"""Paths over property graphs (paper Section 2.2).

A path is an alternating sequence ``(n1, e1, n2, e2, ..., ek, nk+1)`` of node
and edge identifiers such that every edge ``ei`` connects ``ni`` to ``ni+1``.
A path of length zero consists of a single node.  Paths are the first-class
values manipulated by every operator of the path algebra.

:class:`Path` stores the node and edge identifier sequences and keeps a
reference to the graph so that labels and properties can be resolved by the
path operators of Section 3.1 (``First``, ``Last``, ``Node``, ``Edge``,
``Len``, ``Label``, ``Prop``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import InvalidPathError, PathConcatenationError
from repro.graph.model import Edge, Node, PropertyGraph

__all__ = ["Path"]


class Path:
    """An alternating node/edge sequence in a property graph.

    Instances are immutable and hashable; two paths are equal iff they have
    the same sequence of node and edge identifiers (graph identity is not part
    of equality, mirroring the paper where all paths live in one graph).
    """

    __slots__ = ("_graph", "_nodes", "_edges", "_hash")

    def __init__(
        self,
        graph: PropertyGraph,
        nodes: Sequence[str],
        edges: Sequence[str] = (),
        validate: bool = True,
    ) -> None:
        if validate:
            _validate_sequence(graph, nodes, edges)
        self._graph = graph
        self._nodes: tuple[str, ...] = tuple(nodes)
        self._edges: tuple[str, ...] = tuple(edges)
        # Hashing is lazy: frontier paths produced during a closure that are
        # pruned before entering any set never pay for it.
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _unchecked(
        cls, graph: PropertyGraph, nodes: tuple[str, ...], edges: tuple[str, ...]
    ) -> "Path":
        """Build a path from already-validated tuples, bypassing ``__init__``.

        Internal fast path for :meth:`concat`, :meth:`prefix` / :meth:`suffix`
        and the closure engine, where the alternating-sequence invariant holds
        by construction.
        """
        path = object.__new__(cls)
        path._graph = graph
        path._nodes = nodes
        path._edges = edges
        path._hash = None
        return path

    @classmethod
    def from_node(cls, graph: PropertyGraph, node_id: str) -> "Path":
        """Return the length-zero path consisting of ``node_id``."""
        return cls(graph, [node_id])

    @classmethod
    def from_edge(cls, graph: PropertyGraph, edge_id: str) -> "Path":
        """Return the length-one path traversing ``edge_id``."""
        edge = graph.edge(edge_id)
        return cls(graph, [edge.source, edge.target], [edge_id], validate=False)

    @classmethod
    def from_interleaved(cls, graph: PropertyGraph, sequence: Sequence[str]) -> "Path":
        """Build a path from the paper's interleaved notation ``(n1, e1, n2, ...)``."""
        if len(sequence) % 2 == 0:
            raise InvalidPathError(
                "interleaved path sequence must have odd length (nodes at even positions)"
            )
        nodes = [sequence[i] for i in range(0, len(sequence), 2)]
        edges = [sequence[i] for i in range(1, len(sequence), 2)]
        return cls(graph, nodes, edges)

    # ------------------------------------------------------------------
    # Path operators (Section 3.1)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The graph the path belongs to."""
        return self._graph

    def first(self) -> str:
        """``First(p)`` — identifier of the first node."""
        return self._nodes[0]

    def last(self) -> str:
        """``Last(p)`` — identifier of the last node."""
        return self._nodes[-1]

    def node(self, i: int) -> str:
        """``Node(p, i)`` — identifier of the i-th node (1-based, as in the paper)."""
        if i < 1 or i > len(self._nodes):
            raise InvalidPathError(f"node position {i} out of range 1..{len(self._nodes)}")
        return self._nodes[i - 1]

    def edge(self, j: int) -> str:
        """``Edge(p, j)`` — identifier of the j-th edge (1-based, as in the paper)."""
        if j < 1 or j > len(self._edges):
            raise InvalidPathError(f"edge position {j} out of range 1..{len(self._edges)}")
        return self._edges[j - 1]

    def len(self) -> int:
        """``Len(p)`` — the number of edges."""
        return len(self._edges)

    def label(self) -> str:
        """``lambda(p)`` — concatenation of the edge labels along the path."""
        parts = []
        for edge_id in self._edges:
            label = self._graph.edge(edge_id).label
            parts.append(label if label is not None else "")
        return "".join(parts)

    def label_sequence(self) -> tuple[str | None, ...]:
        """Return the tuple of edge labels along the path (``None`` for unlabeled edges)."""
        return tuple(self._graph.edge(edge_id).label for edge_id in self._edges)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> tuple[str, ...]:
        """The node identifiers, in order."""
        return self._nodes

    @property
    def edge_ids(self) -> tuple[str, ...]:
        """The edge identifiers, in order."""
        return self._edges

    def nodes(self) -> list[Node]:
        """Return the :class:`Node` objects along the path, in order."""
        return [self._graph.node(node_id) for node_id in self._nodes]

    def edges(self) -> list[Edge]:
        """Return the :class:`Edge` objects along the path, in order."""
        return [self._graph.edge(edge_id) for edge_id in self._edges]

    def first_node(self) -> Node:
        """Return the first node as a :class:`Node` object."""
        return self._graph.node(self.first())

    def last_node(self) -> Node:
        """Return the last node as a :class:`Node` object."""
        return self._graph.node(self.last())

    def interleaved(self) -> tuple[str, ...]:
        """Return the paper's interleaved ``(n1, e1, n2, ..., ek, nk+1)`` representation."""
        result: list[str] = [self._nodes[0]]
        for edge_id, node_id in zip(self._edges, self._nodes[1:]):
            result.append(edge_id)
            result.append(node_id)
        return tuple(result)

    def endpoints(self) -> tuple[str, str]:
        """Return ``(First(p), Last(p))``."""
        return (self.first(), self.last())

    # ------------------------------------------------------------------
    # Concatenation (p1 ∘ p2)
    # ------------------------------------------------------------------
    def concat(self, other: "Path") -> "Path":
        """Return ``self ∘ other``; requires ``Last(self) == First(other)``."""
        if self.last() != other.first():
            raise PathConcatenationError(
                f"cannot concatenate: Last(p1)={self.last()!r} != First(p2)={other.first()!r}"
            )
        return Path._unchecked(
            self._graph, self._nodes + other._nodes[1:], self._edges + other._edges
        )

    def can_concat(self, other: "Path") -> bool:
        """Return ``True`` when ``self ∘ other`` is defined."""
        return self.last() == other.first()

    def prefix(self, length: int) -> "Path":
        """Return the prefix of the path containing the first ``length`` edges."""
        if length < 0 or length > self.len():
            raise InvalidPathError(f"prefix length {length} out of range 0..{self.len()}")
        return Path._unchecked(self._graph, self._nodes[: length + 1], self._edges[:length])

    def suffix(self, length: int) -> "Path":
        """Return the suffix of the path containing the last ``length`` edges."""
        if length < 0 or length > self.len():
            raise InvalidPathError(f"suffix length {length} out of range 0..{self.len()}")
        if length == 0:
            return Path._unchecked(self._graph, (self._nodes[-1],), ())
        return Path._unchecked(
            self._graph, self._nodes[-(length + 1):], self._edges[-length:]
        )

    def reverse_endpoints(self) -> tuple[str, str]:
        """Return ``(Last(p), First(p))`` — convenience for undirected-style lookups."""
        return (self.last(), self.first())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Path") -> "Path":
        """``p1 @ p2`` is a shorthand for :meth:`concat`."""
        return self.concat(other)

    def __len__(self) -> int:
        return self.len()

    def __iter__(self) -> Iterator[str]:
        return iter(self.interleaved())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash((self._nodes, self._edges))
        return value

    def __lt__(self, other: "Path") -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.interleaved() < other.interleaved()

    def __repr__(self) -> str:
        return f"Path({', '.join(self.interleaved())})"

    def __str__(self) -> str:
        return "(" + ", ".join(self.interleaved()) + ")"


def _validate_sequence(graph: PropertyGraph, nodes: Sequence[str], edges: Sequence[str]) -> None:
    """Check the alternating-sequence invariants of Section 2.2."""
    if not nodes:
        raise InvalidPathError("a path must contain at least one node")
    if len(nodes) != len(edges) + 1:
        raise InvalidPathError(
            f"a path with {len(edges)} edges must have {len(edges) + 1} nodes, got {len(nodes)}"
        )
    for node_id in nodes:
        if not graph.has_node(node_id):
            raise InvalidPathError(f"unknown node in path: {node_id!r}")
    for index, edge_id in enumerate(edges):
        if not graph.has_edge(edge_id):
            raise InvalidPathError(f"unknown edge in path: {edge_id!r}")
        edge = graph.edge(edge_id)
        if edge.source != nodes[index] or edge.target != nodes[index + 1]:
            raise InvalidPathError(
                f"edge {edge_id!r} does not connect {nodes[index]!r} to {nodes[index + 1]!r}"
            )
