"""Functional forms of the paper's path operators (Section 3.1).

The paper defines ``First``, ``Last``, ``Node``, ``Edge``, ``Len``, ``Label``
and ``Prop`` as free-standing operators over paths and objects.  The
:class:`~repro.paths.path.Path` class exposes the same functionality as
methods; this module provides the free-function spelling so that algebra code
and tests can mirror the paper's notation literally.
"""

from __future__ import annotations

from typing import Any

from repro.paths.path import Path

__all__ = ["first", "last", "node", "edge", "length", "label", "prop", "concat"]


def first(path: Path) -> str:
    """``First(p)`` — identifier of the first node of ``path``."""
    return path.first()


def last(path: Path) -> str:
    """``Last(p)`` — identifier of the last node of ``path``."""
    return path.last()


def node(path: Path, i: int) -> str:
    """``Node(p, i)`` — identifier of the node at 1-based position ``i``."""
    return path.node(i)


def edge(path: Path, j: int) -> str:
    """``Edge(p, j)`` — identifier of the edge at 1-based position ``j``."""
    return path.edge(j)


def length(path: Path) -> int:
    """``Len(p)`` — number of edges of ``path``."""
    return path.len()


def label(path: Path, object_id: str) -> str | None:
    """``Label(o)`` — label of a node or edge occurring in ``path`` (or its graph)."""
    return path.graph.label_of(object_id)


def prop(path: Path, object_id: str, property_name: str, default: Any = None) -> Any:
    """``Prop(o, pr)`` — value of property ``property_name`` of object ``object_id``."""
    return path.graph.property_of(object_id, property_name, default)


def concat(path1: Path, path2: Path) -> Path:
    """``p1 ∘ p2`` — path concatenation; requires ``Last(p1) == First(p2)``."""
    return path1.concat(path2)
