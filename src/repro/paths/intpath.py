"""Int-encoded paths over a :class:`~repro.graph.compact.CompactGraph`.

The object representation (:class:`~repro.paths.path.Path`) stores a path as
two tuples of string identifiers; every hash, equality probe and visited-set
membership check during a closure therefore hashes strings.  Against a compact
graph the same path is a single *interleaved tuple of dense ints*::

    (n0, e0, n1, e1, n2, ...)      # node indexes at even slots, edge at odd

One tuple means one concat and one hash per produced path in the closure's hot
loop, and int hashing is a single machine-word mix.  The interleaving is
unambiguous — node and edge index spaces both start at 0, but a slot's parity
decides which table it points into, so decoding is lossless.

Encoding and decoding happen only at the closure boundary: results are decoded
back into ``Path`` objects (via the ``_unchecked`` fast constructor, against
whatever graph view the query was pinned to) at materialization time, so every
consumer above the closure sees byte-identical objects to the unfrozen path.

:class:`IntPath` / :class:`IntPathSet` wrap the raw sequences with a small API
for code that holds encoded paths across a boundary (the pickling tests, the
process pool's wire format); the closure strategies in
:mod:`repro.semantics.int_closure` deliberately use the raw tuples.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.compact import CompactGraph
from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = [
    "IntPath",
    "IntPathSet",
    "encode_seq",
    "decode_seq",
    "encode_base",
]


def encode_seq(compact: CompactGraph, path: Path) -> tuple[int, ...] | None:
    """Encode ``path`` as an interleaved int tuple, or ``None`` if any of its
    identifiers is unknown to ``compact`` (the caller then falls back to the
    object path)."""
    nodes = path._nodes
    edges = path._edges
    node_index = compact._node_index
    edge_index = compact._edge_index
    try:
        seq = [0] * (len(nodes) + len(edges))
        seq[::2] = [node_index[n] for n in nodes]
        seq[1::2] = [edge_index[e] for e in edges]
    except KeyError:
        return None
    return tuple(seq)


def decode_seq(compact: CompactGraph, graph, seq: tuple[int, ...]) -> Path:
    """Decode an interleaved int tuple back into a :class:`Path` bound to
    ``graph`` (the view the query was pinned to — not necessarily ``compact``
    itself, so downstream property reads resolve exactly as before)."""
    node_ids = compact._node_ids
    edge_ids = compact._edge_ids
    return Path._unchecked(
        graph,
        tuple(node_ids[i] for i in seq[::2]),
        tuple(edge_ids[i] for i in seq[1::2]),
    )


def encode_base(compact: CompactGraph, paths) -> list[tuple[int, ...]] | None:
    """Encode every path in ``paths``; ``None`` if any path fails to encode."""
    encoded = []
    append = encoded.append
    for path in paths:
        seq = encode_seq(compact, path)
        if seq is None:
            return None
        append(seq)
    return encoded


class IntPath:
    """A single int-encoded path (see module docstring for the layout).

    Equality and hashing are over ``(graph identity-free) seq`` only, matching
    ``Path`` semantics (two paths are equal iff their node/edge id sequences
    are — and per-compact-graph the int encoding is injective).
    """

    __slots__ = ("_compact", "_seq")

    def __init__(self, compact: CompactGraph, seq: tuple[int, ...]):
        self._compact = compact
        self._seq = tuple(seq)

    @classmethod
    def encode(cls, compact: CompactGraph, path: Path) -> "IntPath":
        seq = encode_seq(compact, path)
        if seq is None:
            raise KeyError(f"path references objects unknown to {compact!r}")
        return cls(compact, seq)

    @property
    def seq(self) -> tuple[int, ...]:
        return self._seq

    @property
    def node_indexes(self) -> tuple[int, ...]:
        return self._seq[::2]

    @property
    def edge_indexes(self) -> tuple[int, ...]:
        return self._seq[1::2]

    def __len__(self) -> int:
        """Path length = number of edges (matches ``len(Path)``)."""
        return len(self._seq) // 2

    @property
    def first_index(self) -> int:
        return self._seq[0]

    @property
    def last_index(self) -> int:
        return self._seq[-1]

    def decode(self, graph=None) -> Path:
        """Materialize the :class:`Path`, bound to ``graph`` (default: the
        compact graph itself)."""
        return decode_seq(self._compact, graph if graph is not None else self._compact, self._seq)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntPath):
            return self._seq == other._seq
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntPath({self._seq!r})"


class IntPathSet:
    """An ordered collection of int-encoded paths sharing one compact graph."""

    __slots__ = ("_compact", "_seqs")

    def __init__(self, compact: CompactGraph, seqs=()):
        self._compact = compact
        self._seqs: list[tuple[int, ...]] = [tuple(s) for s in seqs]

    @classmethod
    def encode(cls, compact: CompactGraph, paths) -> "IntPathSet":
        seqs = encode_base(compact, paths)
        if seqs is None:
            raise KeyError(f"path set references objects unknown to {compact!r}")
        return cls(compact, seqs)

    @property
    def seqs(self) -> list[tuple[int, ...]]:
        return self._seqs

    def __len__(self) -> int:
        return len(self._seqs)

    def __iter__(self) -> Iterator[IntPath]:
        compact = self._compact
        for seq in self._seqs:
            yield IntPath(compact, seq)

    def decode(self, graph=None) -> PathSet:
        """Materialize a :class:`PathSet` (sequences are assumed unique, as
        every closure maintains — mirrors ``PathSet.from_unique``)."""
        target = graph if graph is not None else self._compact
        compact = self._compact
        return PathSet.from_unique(decode_seq(compact, target, seq) for seq in self._seqs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntPathSet):
            return self._seqs == other._seqs
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntPathSet(len={len(self._seqs)})"
