"""Structural path predicates (paper Section 2.2 and Table 2).

These predicates classify paths according to the GQL / SQL-PGQ restrictors:

* **walk** — any path (no restriction);
* **trail** — no repeated edges;
* **acyclic** — no repeated nodes;
* **simple** — no repeated nodes except that the first and last node may
  coincide.

Shortest-ness is not a property of a single path in isolation (it depends on
the set of paths sharing its endpoints) and therefore lives in
:mod:`repro.semantics.restrictors`.
"""

from __future__ import annotations

from repro.paths.path import Path

__all__ = [
    "is_walk",
    "is_trail",
    "is_acyclic",
    "is_simple",
    "is_cycle",
    "has_repeated_nodes",
    "has_repeated_edges",
    "satisfies_restrictor_name",
]


def is_walk(path: Path) -> bool:
    """Every path is a walk; provided for symmetry with the other predicates."""
    return True


def has_repeated_edges(path: Path) -> bool:
    """Return ``True`` if some edge identifier occurs more than once."""
    edges = path.edge_ids
    return len(set(edges)) != len(edges)


def has_repeated_nodes(path: Path) -> bool:
    """Return ``True`` if some node identifier occurs more than once."""
    nodes = path.node_ids
    return len(set(nodes)) != len(nodes)


def is_trail(path: Path) -> bool:
    """Return ``True`` if the path has no repeated edges (TRAIL restrictor)."""
    return not has_repeated_edges(path)


def is_acyclic(path: Path) -> bool:
    """Return ``True`` if the path has no repeated nodes (ACYCLIC restrictor)."""
    return not has_repeated_nodes(path)


def is_simple(path: Path) -> bool:
    """Return ``True`` if no node repeats except possibly first == last (SIMPLE restrictor)."""
    nodes = path.node_ids
    if len(nodes) <= 1:
        return True
    interior = nodes[:-1]
    if len(set(interior)) != len(interior):
        return False
    last = nodes[-1]
    # The last node may only coincide with the first node, not with any
    # interior node.
    return last not in nodes[1:-1]


def is_cycle(path: Path) -> bool:
    """Return ``True`` if the path is non-empty and starts and ends at the same node."""
    return path.len() > 0 and path.first() == path.last()


_RESTRICTOR_PREDICATES = {
    "WALK": is_walk,
    "TRAIL": is_trail,
    "ACYCLIC": is_acyclic,
    "SIMPLE": is_simple,
}


def satisfies_restrictor_name(path: Path, restrictor: str) -> bool:
    """Return whether ``path`` satisfies the named restrictor (case-insensitive).

    ``SHORTEST`` is accepted and treated as a walk at the single-path level;
    genuine shortest-path filtering is a set-level operation handled by
    :func:`repro.semantics.restrictors.apply_restrictor`.
    """
    name = restrictor.upper()
    if name == "SHORTEST":
        return True
    try:
        predicate = _RESTRICTOR_PREDICATES[name]
    except KeyError:
        raise ValueError(f"unknown restrictor: {restrictor!r}") from None
    return predicate(path)
