"""Structural path predicates (paper Section 2.2 and Table 2).

These predicates classify paths according to the GQL / SQL-PGQ restrictors:

* **walk** — any path (no restriction);
* **trail** — no repeated edges;
* **acyclic** — no repeated nodes;
* **simple** — no repeated nodes except that the first and last node may
  coincide.

Shortest-ness is not a property of a single path in isolation (it depends on
the set of paths sharing its endpoints) and therefore lives in
:mod:`repro.semantics.restrictors`.
"""

from __future__ import annotations

from repro.paths.path import Path

__all__ = [
    "is_walk",
    "is_trail",
    "is_acyclic",
    "is_simple",
    "is_cycle",
    "has_repeated_nodes",
    "has_repeated_edges",
    "satisfies_restrictor_name",
    "extend_trail_state",
    "extend_acyclic_state",
    "extend_simple_state",
]


def is_walk(path: Path) -> bool:
    """Every path is a walk; provided for symmetry with the other predicates."""
    return True


def has_repeated_edges(path: Path) -> bool:
    """Return ``True`` if some edge identifier occurs more than once."""
    edges = path.edge_ids
    return len(set(edges)) != len(edges)


def has_repeated_nodes(path: Path) -> bool:
    """Return ``True`` if some node identifier occurs more than once."""
    nodes = path.node_ids
    return len(set(nodes)) != len(nodes)


def is_trail(path: Path) -> bool:
    """Return ``True`` if the path has no repeated edges (TRAIL restrictor)."""
    return not has_repeated_edges(path)


def is_acyclic(path: Path) -> bool:
    """Return ``True`` if the path has no repeated nodes (ACYCLIC restrictor)."""
    return not has_repeated_nodes(path)


def is_simple(path: Path) -> bool:
    """Return ``True`` if no node repeats except possibly first == last (SIMPLE restrictor)."""
    nodes = path.node_ids
    if len(nodes) <= 1:
        return True
    interior = nodes[:-1]
    if len(set(interior)) != len(interior):
        return False
    last = nodes[-1]
    # The last node may only coincide with the first node, not with any
    # interior node.
    return last not in nodes[1:-1]


# ----------------------------------------------------------------------
# Incremental extension checks
# ----------------------------------------------------------------------
# The closure engine of :mod:`repro.semantics.restrictors` carries, for every
# frontier path, the set of visited edges (Trail) or nodes (Acyclic / Simple).
# Extending a conforming path by a base segment then only requires membership
# probes on the *appended* identifiers — O(1) per appended edge — instead of
# re-scanning the whole candidate path with the predicates above.  The
# predicates remain the oracles: for a conforming prefix, each checker accepts
# exactly when the corresponding ``is_*`` predicate accepts the joined path
# (asserted by the property tests in ``tests/test_closure_equivalence.py``).
#
# Each checker returns the visited set of the extended path, or ``None`` when
# the extension violates the restrictor.  On rejection of a single-segment
# extension (the overwhelmingly common case: base paths are edges) nothing is
# allocated, so pruned candidates cost a dictionary probe and nothing else.


def _extend_disjoint_state(visited: set[str], appended: tuple[str, ...]) -> set[str] | None:
    """Extend ``visited`` by ``appended`` ids, or ``None`` on any repetition.

    The single-element branch (the common case: base paths are edges) probes
    before copying, so a rejected extension allocates nothing.
    """
    if len(appended) == 1:
        identifier = appended[0]
        if identifier in visited:
            return None
        extended = set(visited)
        extended.add(identifier)
        return extended
    extended = set(visited)
    for identifier in appended:
        if identifier in extended:
            return None
        extended.add(identifier)
    return extended


def extend_trail_state(visited_edges: set[str], appended_edges: tuple[str, ...]) -> set[str] | None:
    """Visited-edge set of ``p ∘ e`` given ``p``'s set, or ``None`` if not a trail."""
    return _extend_disjoint_state(visited_edges, appended_edges)


def extend_acyclic_state(visited_nodes: set[str], appended_nodes: tuple[str, ...]) -> set[str] | None:
    """Visited-node set of ``p ∘ e`` given ``p``'s set, or ``None`` if not acyclic.

    ``appended_nodes`` are the nodes of the extension *after* its first node
    (which coincides with ``Last(p)`` and is already in the set).
    """
    return _extend_disjoint_state(visited_nodes, appended_nodes)


def extend_simple_state(
    visited_nodes: set[str],
    first_node: str,
    closed: bool,
    appended_nodes: tuple[str, ...],
) -> set[str] | None:
    """Visited-node set of ``p ∘ e`` given ``p``'s set, or ``None`` if not simple.

    ``closed`` says whether ``p`` already returned to its first node (a closed
    simple cycle admits no simple extension: its first node would repeat as an
    interior node).  The final appended node may coincide with ``first_node``,
    closing a simple cycle; every other appended node must be fresh.
    """
    if closed:
        return None
    last_index = len(appended_nodes) - 1
    if last_index == 0:
        node_id = appended_nodes[0]
        if node_id == first_node:
            # Closing the cycle adds no new node; the set is shared with the
            # parent state, which is safe because states are never mutated
            # after creation.
            return visited_nodes
        if node_id in visited_nodes:
            return None
        extended = set(visited_nodes)
        extended.add(node_id)
        return extended
    extended = set(visited_nodes)
    for index, node_id in enumerate(appended_nodes):
        if index == last_index and node_id == first_node:
            return extended
        if node_id in extended:
            return None
        extended.add(node_id)
    return extended


def is_cycle(path: Path) -> bool:
    """Return ``True`` if the path is non-empty and starts and ends at the same node."""
    return path.len() > 0 and path.first() == path.last()


_RESTRICTOR_PREDICATES = {
    "WALK": is_walk,
    "TRAIL": is_trail,
    "ACYCLIC": is_acyclic,
    "SIMPLE": is_simple,
}


def satisfies_restrictor_name(path: Path, restrictor: str) -> bool:
    """Return whether ``path`` satisfies the named restrictor (case-insensitive).

    ``SHORTEST`` is accepted and treated as a walk at the single-path level;
    genuine shortest-path filtering is a set-level operation handled by
    :func:`repro.semantics.restrictors.apply_restrictor`.
    """
    name = restrictor.upper()
    if name == "SHORTEST":
        return True
    try:
        predicate = _RESTRICTOR_PREDICATES[name]
    except KeyError:
        raise ValueError(f"unknown restrictor: {restrictor!r}") from None
    return predicate(path)
