"""A blocking client for :class:`~repro.server.ReproServer`'s JSONL protocol.

:class:`ReproClient` is deliberately synchronous — plain sockets, no event
loop — so tests can drive many concurrent clients from ordinary threads and
the replay harness can pace requests without async plumbing.  One client is
one server-side session: every query it runs sees the graph version pinned
when the connection was accepted (:attr:`ReproClient.version`), until
:meth:`refresh` re-pins.

Error frames come back as the same typed exceptions the in-process API
raises (:class:`~repro.errors.ServiceOverloadedError` on admission
rejection, :class:`~repro.errors.BudgetExceeded` — partial progress
included — on a budget kill), so calling code cannot tell the wire from the
library.  That symmetry is the point: the server test suite runs identical
assertions against both.

Not thread-safe: one client per thread (the protocol is strictly
request-response per connection).
"""

from __future__ import annotations

import socket
from typing import Any, Iterator, Mapping

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    raise_for_frame,
)

__all__ = ["ReproClient", "RemoteRows"]


class RemoteRows:
    """The materialized result of one remote query.

    Attributes:
        rows: The JSON binding records, one per path, in canonical order.
        count: ``len(rows)`` as reported by the server's ``done`` frame.
        version: Graph version the query executed at.
        executor: Executor attribution (empty for streamed queries).
        elapsed_seconds: Server-side execution time (0.0 for streamed).
        result_cache_hit: Whether the server served the result from cache.
    """

    __slots__ = (
        "rows",
        "count",
        "version",
        "executor",
        "elapsed_seconds",
        "result_cache_hit",
    )

    def __init__(self, rows: list[dict], done: Mapping[str, Any]) -> None:
        self.rows = rows
        self.count = int(done.get("count", len(rows)))
        self.version = int(done.get("version", -1))
        self.executor = str(done.get("executor", ""))
        self.elapsed_seconds = float(done.get("elapsed_seconds", 0.0))
        self.result_cache_hit = bool(done.get("result_cache_hit", False))

    def paths(self) -> list[str]:
        """The canonical path renderings, one per row."""
        return [row["path"] for row in self.rows]

    def rendered(self) -> str:
        """One-path-per-line canonical rendering.

        Byte-identical to :meth:`repro.service.QueryOutcome.rendered` for
        the same query at the same version — the wire-parity contract.
        """
        return "\n".join(self.paths())

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class ReproClient:
    """Blocking JSONL client; context-manager friendly.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout in seconds applied to every receive —
            a guard so protocol bugs fail tests instead of hanging them.
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False
        self.version = -1
        self.protocol = 0
        hello = self._roundtrip({"op": "hello"})
        if hello.get("type") == "hello":
            self.version = int(hello.get("version", -1))
            self.protocol = int(hello.get("protocol", 0))
            if self.protocol != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"server speaks protocol {self.protocol}, client expects {PROTOCOL_VERSION}"
                )

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, frame: Mapping[str, Any]) -> None:
        self._sock.sendall(encode_frame(frame))

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        frame = decode_frame(line)
        raise_for_frame(frame)
        return frame

    def _roundtrip(self, frame: dict) -> dict:
        frame.setdefault("id", self._request_id())
        self._send(frame)
        return self._recv()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> RemoteRows:
        """Run a query and materialize all rows.

        ``options`` are the wire knobs: ``limit``, ``max_length``,
        ``deadline`` (seconds), ``max_visited``, ``executor``,
        ``stream`` (force the streaming path), ``fetch_size``.

        Raises the typed exception the server reported on failure.
        """
        rows: list[dict] = []
        done: Mapping[str, Any] = {}
        for frame in self._query_frames(text, params, options):
            if frame["type"] == "page":
                rows.extend(frame.get("rows", ()))
            elif frame["type"] == "done":
                done = frame
        return RemoteRows(rows, done)

    def query_iter(
        self,
        text: str,
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> Iterator[dict]:
        """Stream a query's rows one at a time (forces the streaming path).

        The generator pulls pages lazily: an unbounded walk can be sipped
        and abandoned — closing the client (or :meth:`abort`) tears the
        stream down server-side.
        """
        options.setdefault("stream", True)
        for frame in self._query_frames(text, params, options):
            if frame["type"] == "page":
                yield from frame.get("rows", ())

    def _query_frames(
        self,
        text: str,
        params: Mapping[str, Any] | None,
        options: Mapping[str, Any],
    ) -> Iterator[dict]:
        frame: dict = {"op": "query", "id": self._request_id(), "text": text}
        if params:
            frame["params"] = dict(params)
        for knob in (
            "stream",
            "fetch_size",
            "limit",
            "max_length",
            "deadline",
            "max_visited",
            "max_results",
            "executor",
        ):
            if options.get(knob) is not None:
                frame[knob] = options[knob]
        self._send(frame)
        while True:
            received = self._recv()
            yield received
            if received["type"] == "done":
                return

    # ------------------------------------------------------------------
    # Prepared statements
    # ------------------------------------------------------------------
    def prepare(
        self, name: str, text: str, max_length: int | None = None
    ) -> list[str]:
        """Prepare ``text`` under ``name`` server-side; returns its parameters."""
        frame: dict = {"op": "prepare", "name": name, "text": text}
        if max_length is not None:
            frame["max_length"] = max_length
        reply = self._roundtrip(frame)
        return list(reply.get("parameters", ()))

    def execute(
        self,
        name: str,
        params: Mapping[str, Any] | None = None,
        **options: Any,
    ) -> RemoteRows:
        """Execute a prepared statement with the given bindings."""
        rows: list[dict] = []
        done: Mapping[str, Any] = {}
        frame: dict = {"op": "execute", "id": self._request_id(), "name": name}
        if params:
            frame["params"] = dict(params)
        for knob in ("limit", "deadline", "max_visited", "executor", "stream"):
            if options.get(knob) is not None:
                frame[knob] = options[knob]
        self._send(frame)
        while True:
            received = self._recv()
            if received["type"] == "page":
                rows.extend(received.get("rows", ()))
            elif received["type"] == "done":
                done = received
                break
        return RemoteRows(rows, done)

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Re-pin the server-side session to the latest graph version."""
        reply = self._roundtrip({"op": "refresh"})
        self.version = int(reply.get("version", self.version))
        return self.version

    def stats(self) -> dict:
        """The server's statistics snapshot."""
        return dict(self._roundtrip({"op": "stats"}).get("statistics", {}))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Polite shutdown: sends ``close``, waits for ``bye``; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._send({"op": "close", "id": self._request_id()})
            self._file.readline()
        except OSError:
            pass
        finally:
            self._teardown()

    def abort(self) -> None:
        """Impolite shutdown: drop the socket with no goodbye.

        Simulates a client crash / network partition — the disconnect-test
        lever for asserting the server reclaims mid-stream cursors.
        """
        if self._closed:
            return
        self._closed = True
        try:
            # RST instead of FIN where the platform honors SO_LINGER(0):
            # the hardest disconnect we can produce from userspace.
            self._sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
        except OSError:
            pass
        self._teardown()

    def _teardown(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
