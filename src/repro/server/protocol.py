"""The JSONL wire protocol shared by the server and the client.

One frame per line, each frame one JSON object.  The client speaks *ops*
(``hello``, ``query``, ``prepare``, ``execute``, ``refresh``, ``stats``,
``close``), the server answers with typed frames:

* ``{"type": "page", "id": ..., "rows": [...]}`` — one streaming cursor page
  (``fetch_size`` rows or fewer); a query may produce any number of pages;
* ``{"type": "done", "id": ..., "count": ..., "version": ...}`` — terminal
  success frame carrying the execution metadata;
* ``{"type": "error", "id": ..., "code": ..., "status": ...}`` — terminal
  typed failure.  ``code`` is machine-readable; ``status`` is the HTTP-shaped
  numeric equivalent (429 for admission rejection, 408 for a budget kill,
  400 for query/protocol errors, 503 during shutdown drain), which the
  HTTP/1.1 face of the server uses verbatim as its response status.

A budget-kill error frame additionally carries the partial progress the
execution made (``paths_visited`` / ``depth_reached`` / ``stopped_at`` /
``budget_reason``), so :func:`raise_for_frame` can rebuild the exact
:class:`~repro.errors.BudgetExceeded` the in-process API would have raised —
budget semantics survive the wire.

Rows are JSON binding records (:meth:`~repro.engine.results.PathBinding.to_dict`
plus the canonical ``path`` rendering), byte-identical to what an in-process
:class:`~repro.api.Session` produces for the same query at the same graph
version — the server test suite's parity contract.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.engine.results import PathBinding
from repro.errors import (
    BudgetExceeded,
    PathAlgebraError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.paths.path import Path

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_STATUS",
    "ProtocolError",
    "RemoteQueryError",
    "encode_frame",
    "decode_frame",
    "row_from_path",
    "error_frame",
    "budget_frame_fields",
    "raise_for_frame",
]

#: Bumped on incompatible frame changes; exchanged in the ``hello`` frames.
PROTOCOL_VERSION = 1

#: error code -> HTTP-shaped numeric status.
ERROR_STATUS = {
    "overloaded": 429,
    "budget": 408,
    "query": 400,
    "protocol": 400,
    "shutdown": 503,
    "internal": 500,
}


class ProtocolError(ServiceError):
    """A frame could not be parsed or is missing required fields."""


class RemoteQueryError(ServiceError):
    """A query failed on the server (parse, planning or evaluation error).

    Attributes:
        code: The machine-readable error code from the wire frame.
        status: The HTTP-shaped numeric status from the wire frame.
    """

    def __init__(self, message: str, code: str = "query", status: int = 400) -> None:
        self.code = code
        self.status = status
        super().__init__(message)


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to a single JSONL line (sorted keys, compact)."""
    return (json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one JSONL line into a frame dict.

    Raises:
        ProtocolError: when the line is not valid JSON or not an object.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    return frame


def row_from_path(path: Path) -> dict:
    """Render one result path as a JSON row.

    The binding record (source/target/length/nodes/edges/labels) plus the
    canonical ``path`` rendering — ``str(path)`` is the same string the
    in-process parity suites compare, so a client can diff wire results
    against local ones byte for byte.
    """
    row = PathBinding.from_path(path).to_dict()
    row["path"] = str(path)
    return row


def error_frame(
    request_id: Any, code: str, message: str, **details: Any
) -> dict:
    """Build a typed error frame (terminal for its request id)."""
    frame = {
        "type": "error",
        "id": request_id,
        "code": code,
        "status": ERROR_STATUS.get(code, 500),
        "error": message,
    }
    frame.update(details)
    return frame


def budget_frame_fields(
    reason: str, paths_visited: int, depth_reached: int, stopped_at: str
) -> dict:
    """The partial-progress payload a budget-kill error frame carries."""
    return {
        "budget_reason": reason,
        "paths_visited": paths_visited,
        "depth_reached": depth_reached,
        "stopped_at": stopped_at,
    }


def raise_for_frame(frame: Mapping[str, Any]) -> None:
    """Raise the typed exception an error frame encodes; no-op otherwise.

    The client-side half of the typed-error contract:

    * ``overloaded`` → :class:`~repro.errors.ServiceOverloadedError` (the
      same exception in-process admission control raises);
    * ``budget`` → :class:`~repro.errors.BudgetExceeded` rebuilt with the
      partial progress from the frame;
    * ``shutdown`` / ``protocol`` → :class:`ProtocolError` /
      :class:`~repro.errors.ServiceError`;
    * anything else → :class:`RemoteQueryError`.
    """
    if frame.get("type") != "error":
        return
    code = frame.get("code", "internal")
    message = str(frame.get("error", "unknown server error"))
    if code == "overloaded":
        raise ServiceOverloadedError(
            message,
            pending=frame.get("pending"),
            capacity=frame.get("capacity"),
        )
    if code == "budget":
        raise BudgetExceeded(
            frame.get("budget_reason", "deadline"),
            paths_visited=int(frame.get("paths_visited", 0)),
            depth_reached=int(frame.get("depth_reached", 0)),
            stopped_at=str(frame.get("stopped_at", "")),
        )
    if code == "shutdown":
        raise ServiceError(message)
    if code == "protocol":
        raise ProtocolError(message)
    raise RemoteQueryError(
        message, code=code, status=int(frame.get("status", ERROR_STATUS.get(code, 500)))
    )


# Re-exported so client code importing the protocol module has the full
# typed-error vocabulary in one place.
_ = (PathAlgebraError,)
