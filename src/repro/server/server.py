"""An asyncio network front-end over :class:`~repro.service.QueryService`.

:class:`ReproServer` listens on one TCP port and speaks two protocols,
sniffed from the first line of each connection:

* **JSONL** (the native protocol, see :mod:`repro.server.protocol`) — a
  long-lived session per connection, pinned at accept time to the graph
  version of that moment.  Every query the connection submits runs at the
  pinned version (``refresh`` re-pins on request), so a client observes a
  consistent database even while writers commit — snapshot isolation
  stretched across the wire.
* **HTTP/1.1** (a convenience face for curl and health checks) — stateless
  one-shot requests: ``GET /health``, ``GET /stats``, ``POST /query``.

Execution paths
---------------

Queries take one of two routes, chosen by the client's ``stream`` flag:

* default — :meth:`QueryService.try_submit` with the connection's pinned
  snapshot: the query gets the service's result cache, budgets and worker
  pool (threads, processes or portfolio racing), and the whole result comes
  back as one page.  ``try_submit`` is the admission-control entry point:
  a full submission queue is a typed 429-shaped rejection, never a blocked
  event loop.
* ``stream: true`` — a server-side :class:`~repro.engine.results.ResultCursor`
  paged out in ``fetch_size`` JSONL frames.  Nothing is materialized ahead
  of the client: an unbounded walk over a cyclic graph streams forever and
  costs the server one suspended generator.  TCP back-pressure (an unread
  socket) suspends the producing coroutine at ``drain()``, so a slow client
  throttles its own query rather than ballooning server memory.

All blocking work (``ticket.result()``, ``cursor.fetchmany()``) runs in the
event loop's default executor — the loop itself only parses frames and
writes bytes.

Lifecycle
---------

The server runs its own event loop in a dedicated thread: ``start()``
returns once the socket is bound (``port=0`` picks an ephemeral port,
published as :attr:`ReproServer.port`), ``stop()`` drains in-flight queries
before tearing connections down.  During the drain window new queries are
refused with a typed 503-shaped ``shutdown`` frame.

A client disconnect mid-stream (reset, timeout, crash) surfaces as a write
error on the next page; the connection handler's teardown closes the
server-side cursor, releasing its suspended generator stack.  With
``track_cursors=True`` the server records every cursor it opens so tests
can assert none leak (:meth:`ReproServer.open_cursors`).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import asdict
from typing import Any, Mapping

from repro.errors import (
    BudgetExceeded,
    PathAlgebraError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    budget_frame_fields,
    decode_frame,
    encode_frame,
    error_frame,
    row_from_path,
)
from repro.service.latency import LatencyHistogram

__all__ = ["ReproServer"]

#: Frames larger than this are a protocol violation, not a memory bomb.
_MAX_FRAME_BYTES = 8 * 1024 * 1024

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Connection:
    """Per-connection state: the pinned session plus prepared statements."""

    __slots__ = ("session", "statements", "peer")

    def __init__(self, session, peer: str) -> None:
        self.session = session
        self.statements: dict[str, tuple[str, int | None]] = {}
        self.peer = peer


class ReproServer:
    """Serve a :class:`~repro.api.Database` over TCP (JSONL + HTTP/1.1).

    Args:
        database: The database to serve; its :meth:`~repro.api.Database.service`
            executes non-streaming queries (created lazily with the
            database's configured workers/execution mode).
        host: Interface to bind; loopback by default.
        port: TCP port; ``0`` picks an ephemeral one (read
            :attr:`port` after :meth:`start`).
        fetch_size: Rows per streaming page frame.
        max_inflight: Server-level admission cap on concurrently executing
            queries (streaming and service-backed alike); ``None`` leaves
            admission to the service's bounded submission queue alone.
        track_cursors: Record every server-side cursor for leak assertions
            in tests (:meth:`open_cursors`).
    """

    def __init__(
        self,
        database,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        fetch_size: int = 64,
        max_inflight: int | None = None,
        track_cursors: bool = False,
    ) -> None:
        if fetch_size < 1:
            raise ValueError(f"fetch_size must be >= 1, got {fetch_size}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.database = database
        self.host = host
        self.port = port
        self.fetch_size = fetch_size
        self.max_inflight = max_inflight
        self.track_cursors = track_cursors
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None
        self._connection_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._inflight = 0
        self._idle = None  # asyncio.Event created on the loop; set when inflight == 0
        self._tracked_cursors: list = []
        self._stats_lock = threading.Lock()
        self._connections_total = 0
        self._active_connections = 0
        self._queries = 0
        self._streamed_pages = 0
        self._rows_sent = 0
        self._rejected = 0
        self._errors = 0
        self._wire_latency = LatencyHistogram()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        """Bind the socket and start serving in a background thread.

        Returns once the port is bound (and :attr:`port` is final) or
        raises the bind error.
        """
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop serving; with ``drain`` wait for in-flight queries first.

        During the drain window newly submitted queries are refused with a
        typed ``shutdown`` frame; queries already executing (including
        suspended streams) get up to ``timeout`` seconds to finish before
        their connections are torn down.  Idempotent.
        """
        if self._thread is None or self._loop is None:
            return
        loop = self._loop
        if drain:
            self._draining = True
            done = threading.Event()

            def watch_idle() -> None:
                if self._inflight == 0:
                    done.set()
                else:
                    task = loop.create_task(self._wait_idle())
                    task.add_done_callback(lambda _: done.set())

            loop.call_soon_threadsafe(watch_idle)
            done.wait(timeout)
        loop.call_soon_threadsafe(self._request_stop)
        self._stopped.wait(timeout + 5.0)
        self._thread.join(timeout + 5.0)
        self._thread = None

    async def _wait_idle(self) -> None:
        assert self._idle is not None
        await self._idle.wait()

    def _request_stop(self) -> None:
        if self._stop_event is not None and not self._stop_event.is_set():
            self._stop_event.set()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair (final after :meth:`start`)."""
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # Event loop thread
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()
                self._loop = None
                self._stopped.set()
                # In case startup failed before _started was set.
                self._started.set()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        try:
            self._server = await asyncio.start_server(
                self._on_connection,
                self.host,
                self.port,
                limit=_MAX_FRAME_BYTES,
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        sockets = self._server.sockets or ()
        if sockets:
            self.host, self.port = sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for task in list(self._connection_tasks):
                task.cancel()
            if self._connection_tasks:
                await asyncio.gather(*self._connection_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        with self._stats_lock:
            self._connections_total += 1
            self._active_connections += 1
        try:
            try:
                first = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not first:
                return
            if first.startswith(_HTTP_METHODS):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionError, asyncio.CancelledError, asyncio.IncompleteReadError):
            pass
        finally:
            with self._stats_lock:
                self._active_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # JSONL protocol
    # ------------------------------------------------------------------
    async def _handle_jsonl(
        self, first: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        connection = _Connection(
            self.database.session(), peer=f"{peer[0]}:{peer[1]}" if peer else "?"
        )
        try:
            line = first
            while line:
                if not line.strip():
                    line = await reader.readline()
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError as error:
                    await self._send(writer, error_frame(None, "protocol", str(error)))
                    return
                if not await self._dispatch(connection, frame, writer):
                    return
                line = await reader.readline()
        finally:
            connection.session.close()

    async def _dispatch(
        self, connection: _Connection, frame: dict, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one client frame; returns False to close the connection."""
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            if op == "hello":
                await self._send(
                    writer,
                    {
                        "type": "hello",
                        "id": request_id,
                        "protocol": PROTOCOL_VERSION,
                        "version": connection.session.version,
                    },
                )
            elif op == "query":
                await self._run_query(
                    connection,
                    writer,
                    request_id,
                    text=frame.get("text"),
                    params=frame.get("params"),
                    options=frame,
                )
            elif op == "prepare":
                await self._op_prepare(connection, writer, frame)
            elif op == "execute":
                name = frame.get("name")
                statement = connection.statements.get(name)
                if statement is None:
                    await self._send(
                        writer,
                        error_frame(
                            request_id, "query", f"unknown prepared statement {name!r}"
                        ),
                    )
                    return True
                text, max_length = statement
                options = dict(frame)
                if max_length is not None and "max_length" not in options:
                    options["max_length"] = max_length
                await self._run_query(
                    connection,
                    writer,
                    request_id,
                    text=text,
                    params=frame.get("params"),
                    options=options,
                )
            elif op == "refresh":
                connection.session.close()
                connection.session = self.database.session()
                await self._send(
                    writer,
                    {
                        "type": "refreshed",
                        "id": request_id,
                        "version": connection.session.version,
                    },
                )
            elif op == "stats":
                await self._send(
                    writer,
                    {"type": "stats", "id": request_id, "statistics": self.statistics()},
                )
            elif op == "close":
                await self._send(writer, {"type": "bye", "id": request_id})
                return False
            else:
                await self._send(
                    writer, error_frame(request_id, "protocol", f"unknown op {op!r}")
                )
        except (ConnectionError, asyncio.CancelledError):
            raise
        except ServiceError as error:
            await self._send(writer, error_frame(request_id, "query", str(error)))
        return True

    async def _op_prepare(
        self, connection: _Connection, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        request_id = frame.get("id")
        name = frame.get("name")
        text = frame.get("text")
        if not isinstance(name, str) or not isinstance(text, str):
            await self._send(
                writer,
                error_frame(request_id, "protocol", "prepare needs 'name' and 'text'"),
            )
            return
        max_length = frame.get("max_length")
        loop = asyncio.get_running_loop()
        try:
            # Validate (and warm the shared plan cache) off the event loop.
            plan = await loop.run_in_executor(
                None,
                lambda: self.database.engine.prepare(
                    text, max_length=max_length, graph=connection.session.snapshot
                ),
            )
        except PathAlgebraError as error:
            await self._send(writer, error_frame(request_id, "query", str(error)))
            return
        connection.statements[name] = (text, max_length)
        await self._send(
            writer,
            {
                "type": "prepared",
                "id": request_id,
                "name": name,
                "parameters": sorted(plan.parameters),
            },
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    async def _run_query(
        self,
        connection: _Connection,
        writer: asyncio.StreamWriter,
        request_id: Any,
        *,
        text: Any,
        params: Any,
        options: Mapping[str, Any],
    ) -> None:
        if not isinstance(text, str):
            await self._send(
                writer, error_frame(request_id, "protocol", "query needs 'text'")
            )
            return
        if params is not None and not isinstance(params, dict):
            await self._send(
                writer, error_frame(request_id, "protocol", "'params' must be an object")
            )
            return
        if self._draining:
            await self._send(
                writer,
                error_frame(request_id, "shutdown", "server is draining; retry elsewhere"),
            )
            return
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            with self._stats_lock:
                self._rejected += 1
            await self._send(
                writer,
                error_frame(
                    request_id,
                    "overloaded",
                    "server is at capacity; query rejected",
                    pending=self._inflight,
                    capacity=self.max_inflight,
                ),
            )
            return
        started = time.monotonic()
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()
        try:
            if options.get("stream"):
                await self._run_streaming(connection, writer, request_id, text, params, options)
            else:
                await self._run_service(connection, writer, request_id, text, params, options)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            with self._stats_lock:
                self._queries += 1
                self._wire_latency.observe(time.monotonic() - started)

    async def _run_service(
        self,
        connection: _Connection,
        writer: asyncio.StreamWriter,
        request_id: Any,
        text: str,
        params: dict | None,
        options: Mapping[str, Any],
    ) -> None:
        service = self.database.service()
        loop = asyncio.get_running_loop()
        try:
            ticket = service.try_submit(
                text,
                max_length=options.get("max_length"),
                executor=options.get("executor"),
                limit=options.get("limit"),
                deadline=options.get("deadline"),
                max_visited=options.get("max_visited"),
                params=params,
                snapshot=connection.session.snapshot,
            )
        except ServiceOverloadedError as error:
            with self._stats_lock:
                self._rejected += 1
            await self._send(
                writer,
                error_frame(
                    request_id,
                    "overloaded",
                    str(error),
                    pending=error.pending,
                    capacity=error.capacity,
                ),
            )
            return
        outcome = await loop.run_in_executor(None, ticket.result)
        if outcome.timed_out:
            with self._stats_lock:
                self._errors += 1
            await self._send(
                writer,
                error_frame(
                    request_id,
                    "budget",
                    outcome.error or f"query budget exhausted ({outcome.budget_reason})",
                    **budget_frame_fields(
                        outcome.budget_reason or "deadline",
                        outcome.paths_visited,
                        outcome.depth_reached,
                        outcome.stopped_at,
                    ),
                ),
            )
            return
        if outcome.error is not None:
            with self._stats_lock:
                self._errors += 1
            await self._send(writer, error_frame(request_id, "query", outcome.error))
            return
        rows = [row_from_path(path) for path in outcome.paths.sorted()]
        with self._stats_lock:
            self._rows_sent += len(rows)
        await self._send(writer, {"type": "page", "id": request_id, "rows": rows})
        await self._send(
            writer,
            {
                "type": "done",
                "id": request_id,
                "count": len(rows),
                "version": outcome.version,
                "executor": outcome.executor,
                "elapsed_seconds": outcome.elapsed_seconds,
                "queued_seconds": outcome.queued_seconds,
                "plan_cache_hit": outcome.plan_cache_hit,
                "result_cache_hit": outcome.result_cache_hit,
            },
        )

    async def _run_streaming(
        self,
        connection: _Connection,
        writer: asyncio.StreamWriter,
        request_id: Any,
        text: str,
        params: dict | None,
        options: Mapping[str, Any],
    ) -> None:
        loop = asyncio.get_running_loop()
        fetch_size = int(options.get("fetch_size") or self.fetch_size)
        kwargs: dict[str, Any] = {}
        for knob in ("executor", "limit", "max_length", "max_visited", "max_results"):
            if options.get(knob) is not None:
                kwargs[knob] = options[knob]
        if options.get("deadline") is not None:
            kwargs["timeout"] = options["deadline"]
        try:
            cursor = connection.session.execute(text, params, **kwargs)
        except PathAlgebraError as error:
            with self._stats_lock:
                self._errors += 1
            await self._send(writer, error_frame(request_id, "query", str(error)))
            return
        if self.track_cursors:
            self._tracked_cursors.append(cursor)
        count = 0
        try:
            while True:
                try:
                    paths = await loop.run_in_executor(None, cursor.fetchmany, fetch_size)
                except BudgetExceeded as error:
                    with self._stats_lock:
                        self._errors += 1
                    await self._send(
                        writer,
                        error_frame(
                            request_id,
                            "budget",
                            str(error),
                            **budget_frame_fields(
                                error.reason,
                                error.paths_visited,
                                error.depth_reached,
                                error.stopped_at,
                            ),
                        ),
                    )
                    return
                except PathAlgebraError as error:
                    with self._stats_lock:
                        self._errors += 1
                    await self._send(writer, error_frame(request_id, "query", str(error)))
                    return
                if not paths:
                    break
                rows = [row_from_path(path) for path in paths]
                count += len(rows)
                with self._stats_lock:
                    self._streamed_pages += 1
                    self._rows_sent += len(rows)
                # drain() is where TCP back-pressure suspends this stream —
                # and where a client disconnect surfaces as ConnectionError.
                await self._send(writer, {"type": "page", "id": request_id, "rows": rows})
            await self._send(
                writer,
                {
                    "type": "done",
                    "id": request_id,
                    "count": count,
                    "version": connection.session.version,
                    "streamed": True,
                },
            )
        finally:
            # Runs on every exit — clean end, client disconnect, drain
            # cancellation — so the suspended generator stack is always
            # released.  Safe against an executor thread still inside
            # fetchmany: ResultCursor.close() is thread-safe and idempotent.
            cursor.close()

    # ------------------------------------------------------------------
    # HTTP/1.1 face
    # ------------------------------------------------------------------
    async def _handle_http(
        self, first: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, _ = first.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._send_http(writer, 400, {"error": "malformed request line"})
            return
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > _MAX_FRAME_BYTES:
                await self._send_http(writer, 413, {"error": "request body too large"})
                return
            body = await reader.readexactly(length)

        if method == "GET" and target == "/health":
            await self._send_http(
                writer,
                200,
                {"status": "ok", "version": self.database.graph.version},
            )
        elif method == "GET" and target == "/stats":
            await self._send_http(writer, 200, self.statistics())
        elif method == "POST" and target == "/query":
            await self._http_query(writer, body)
        elif target in ("/health", "/stats", "/query"):
            await self._send_http(
                writer, 405, {"error": f"method {method} not allowed on {target}"}
            )
        else:
            await self._send_http(writer, 404, {"error": f"no such endpoint {target}"})

    async def _http_query(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            request = decode_frame(body or b"{}")
        except ProtocolError as error:
            await self._send_http(writer, 400, {"error": str(error)})
            return
        if self._draining:
            await self._send_http(writer, 503, {"error": "server is draining"})
            return
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            with self._stats_lock:
                self._rejected += 1
            await self._send_http(
                writer,
                429,
                {
                    "error": "server is at capacity; query rejected",
                    "pending": self._inflight,
                    "capacity": self.max_inflight,
                },
            )
            return
        text = request.get("text")
        if not isinstance(text, str):
            await self._send_http(writer, 400, {"error": "body needs 'text'"})
            return
        started = time.monotonic()
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()
        try:
            service = self.database.service()
            loop = asyncio.get_running_loop()
            try:
                ticket = service.try_submit(
                    text,
                    max_length=request.get("max_length"),
                    executor=request.get("executor"),
                    limit=request.get("limit"),
                    deadline=request.get("deadline"),
                    max_visited=request.get("max_visited"),
                    params=request.get("params"),
                )
            except ServiceOverloadedError as error:
                with self._stats_lock:
                    self._rejected += 1
                await self._send_http(
                    writer,
                    429,
                    {"error": str(error), "pending": error.pending, "capacity": error.capacity},
                )
                return
            outcome = await loop.run_in_executor(None, ticket.result)
            if outcome.timed_out:
                with self._stats_lock:
                    self._errors += 1
                await self._send_http(
                    writer,
                    408,
                    {
                        "error": outcome.error
                        or f"query budget exhausted ({outcome.budget_reason})",
                        **budget_frame_fields(
                            outcome.budget_reason or "deadline",
                            outcome.paths_visited,
                            outcome.depth_reached,
                            outcome.stopped_at,
                        ),
                    },
                )
                return
            if outcome.error is not None:
                with self._stats_lock:
                    self._errors += 1
                await self._send_http(writer, 400, {"error": outcome.error})
                return
            rows = [row_from_path(path) for path in outcome.paths.sorted()]
            with self._stats_lock:
                self._rows_sent += len(rows)
            await self._send_http(
                writer,
                200,
                {
                    "rows": rows,
                    "count": len(rows),
                    "version": outcome.version,
                    "executor": outcome.executor,
                    "elapsed_seconds": outcome.elapsed_seconds,
                },
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            with self._stats_lock:
                self._queries += 1
                self._wire_latency.observe(time.monotonic() - started)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: Mapping[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    @staticmethod
    async def _send_http(
        writer: asyncio.StreamWriter, status: int, payload: Mapping[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _HTTP_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Point-in-time server counters, wire latency, and service stats."""
        with self._stats_lock:
            stats = {
                "host": self.host,
                "port": self.port,
                "connections_total": self._connections_total,
                "active_connections": self._active_connections,
                "inflight": self._inflight,
                "queries": self._queries,
                "streamed_pages": self._streamed_pages,
                "rows_sent": self._rows_sent,
                "rejected": self._rejected,
                "errors": self._errors,
                "draining": self._draining,
                "latency": {"wire_seconds": self._wire_latency.summary()},
            }
        if self.database._service is not None:
            stats["service"] = asdict(self.database.service().statistics())
        return stats

    def open_cursors(self) -> list:
        """Tracked server-side cursors still open (``track_cursors=True`` only).

        The leak oracle for the disconnect tests: after a client drops
        mid-stream and the connection handler unwinds, this list must drain
        to empty — a non-empty result is a leaked suspended generator.
        """
        self._tracked_cursors = [c for c in self._tracked_cursors if not c.closed]
        return list(self._tracked_cursors)
