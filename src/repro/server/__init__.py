"""Network serving: JSONL/HTTP front-end over the concurrent query service.

* :class:`ReproServer` — asyncio TCP server (own event-loop thread) with
  per-connection snapshot-pinned sessions, streaming cursor pages,
  admission control and graceful drain;
* :class:`ReproClient` — the blocking JSONL client with typed-error parity
  (wire failures raise the same exceptions as the in-process API);
* :mod:`repro.server.protocol` — the frame vocabulary both sides share.
"""

from repro.server.client import RemoteRows, ReproClient
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteQueryError,
)
from repro.server.server import ReproServer

__all__ = [
    "ReproServer",
    "ReproClient",
    "RemoteRows",
    "RemoteQueryError",
    "ProtocolError",
    "PROTOCOL_VERSION",
]
