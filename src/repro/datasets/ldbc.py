"""Synthetic LDBC-SNB-like social-network generator.

The paper's running example is a snippet of the LDBC Social Network Benchmark
(SNB) graph.  The real benchmark data requires the LDBC data generator and is
not redistributable here, so this module produces a *synthetic substitute*
that preserves the features the path algebra exercises:

* ``Person`` nodes connected by ``Knows`` edges forming a friendship network
  with triangles and longer cycles (so Walk recursion is non-terminating and
  Trail/Acyclic/Simple/Shortest restrictors all differ);
* ``Message`` nodes (posts/comments) connected to persons by ``Likes`` edges
  (person -> message) and ``Has_creator`` edges (message -> person), so the
  ``(Likes/Has_creator)+`` pattern of the paper's introduction is meaningful;
* ``Forum`` nodes with ``Has_member`` edges, used by the larger example
  workloads;
* realistic person properties (``name``, ``last_name``, ``city``, ``age``).

The generator is deterministic for a given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.model import PropertyGraph

__all__ = ["LDBCParameters", "ldbc_like_graph"]

_FIRST_NAMES = [
    "Moe", "Lisa", "Bart", "Apu", "Homer", "Marge", "Ned", "Carl", "Lenny",
    "Milhouse", "Nelson", "Ralph", "Seymour", "Edna", "Selma", "Patty",
]
_LAST_NAMES = [
    "Szyslak", "Simpson", "Nahasapeemapetilon", "Flanders", "Carlson",
    "Leonard", "Van Houten", "Muntz", "Wiggum", "Skinner", "Krabappel",
    "Bouvier",
]
_CITIES = ["Springfield", "Shelbyville", "Capital City", "Ogdenville", "North Haverbrook"]


@dataclass(frozen=True)
class LDBCParameters:
    """Size and shape parameters of the synthetic SNB-like graph.

    Attributes:
        num_persons: Number of ``Person`` nodes.
        num_messages: Number of ``Message`` nodes.
        num_forums: Number of ``Forum`` nodes.
        avg_knows_degree: Average number of outgoing ``Knows`` edges per person.
        avg_likes_per_person: Average number of ``Likes`` edges per person.
        knows_reciprocity: Probability that a ``Knows`` edge gets a reverse
            counterpart (reciprocated friendships create 2-cycles, mirroring
            the inner cycle of Figure 1).
        seed: Random seed; identical parameters and seed give identical graphs.
    """

    num_persons: int = 50
    num_messages: int = 100
    num_forums: int = 5
    avg_knows_degree: float = 3.0
    avg_likes_per_person: float = 2.0
    knows_reciprocity: float = 0.3
    seed: int = 42


def ldbc_like_graph(params: LDBCParameters | None = None) -> PropertyGraph:
    """Generate a synthetic LDBC-SNB-like property graph.

    The returned graph uses the same label vocabulary as Figure 1
    (``Person``/``Message`` nodes; ``Knows``/``Likes``/``Has_creator`` edges)
    plus ``Forum``/``Has_member``, so every query of the paper runs unchanged
    against it.
    """
    params = params or LDBCParameters()
    rng = random.Random(params.seed)
    graph = PropertyGraph(name=f"ldbc_like_{params.num_persons}p")

    person_ids = []
    for index in range(params.num_persons):
        person_id = f"person{index}"
        person_ids.append(person_id)
        graph.add_node(
            person_id,
            "Person",
            {
                "name": rng.choice(_FIRST_NAMES),
                "last_name": rng.choice(_LAST_NAMES),
                "city": rng.choice(_CITIES),
                "age": rng.randint(18, 80),
            },
        )

    message_ids = []
    for index in range(params.num_messages):
        message_id = f"message{index}"
        message_ids.append(message_id)
        graph.add_node(
            message_id,
            "Message",
            {"content": f"message body {index}", "length": rng.randint(5, 200)},
        )

    forum_ids = []
    for index in range(params.num_forums):
        forum_id = f"forum{index}"
        forum_ids.append(forum_id)
        graph.add_node(forum_id, "Forum", {"title": f"forum {index}"})

    edge_index = 0

    def next_edge_id() -> str:
        nonlocal edge_index
        edge_index += 1
        return f"edge{edge_index}"

    # Knows edges between persons (friendship network with reciprocity).
    total_knows = int(params.num_persons * params.avg_knows_degree)
    for _ in range(total_knows):
        source = rng.choice(person_ids)
        target = rng.choice(person_ids)
        if source == target:
            continue
        graph.add_edge(next_edge_id(), source, target, "Knows", {"since": rng.randint(2000, 2024)})
        if rng.random() < params.knows_reciprocity:
            graph.add_edge(
                next_edge_id(), target, source, "Knows", {"since": rng.randint(2000, 2024)}
            )

    # Every message has exactly one creator (message -> person, Has_creator).
    for message_id in message_ids:
        creator = rng.choice(person_ids)
        graph.add_edge(next_edge_id(), message_id, creator, "Has_creator", {})

    # Likes edges (person -> message).
    total_likes = int(params.num_persons * params.avg_likes_per_person)
    for _ in range(total_likes):
        person = rng.choice(person_ids)
        message = rng.choice(message_ids)
        graph.add_edge(next_edge_id(), person, message, "Likes", {"stars": rng.randint(1, 5)})

    # Forum membership (forum -> person, Has_member).
    for forum_id in forum_ids:
        members = rng.sample(person_ids, k=min(len(person_ids), rng.randint(2, 10)))
        for member in members:
            graph.add_edge(next_edge_id(), forum_id, member, "Has_member", {})

    return graph
