"""Synthetic property-graph generators used by tests and benchmarks.

All generators take an explicit ``seed`` so that benchmark workloads are
reproducible across runs.  Generators return ordinary
:class:`~repro.graph.model.PropertyGraph` objects; labels default to the
``Knows`` / ``Likes`` / ``Has_creator`` vocabulary of the paper's running
example so that the same queries can be executed against every data set.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graph.model import PropertyGraph

__all__ = [
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "binary_tree_graph",
    "random_graph",
    "layered_graph",
    "scale_free_graph",
    "complete_graph",
]

_DEFAULT_LABEL = "Knows"


def chain_graph(num_nodes: int, label: str = _DEFAULT_LABEL, name: str = "chain") -> PropertyGraph:
    """A directed chain ``v0 -> v1 -> ... -> v_{n-1}`` (acyclic, single path per pair)."""
    graph = PropertyGraph(name=name)
    for index in range(num_nodes):
        graph.add_node(f"v{index}", "Person", {"name": f"p{index}", "rank": index})
    for index in range(num_nodes - 1):
        graph.add_edge(f"c{index}", f"v{index}", f"v{index + 1}", label, {"weight": 1})
    return graph


def cycle_graph(num_nodes: int, label: str = _DEFAULT_LABEL, name: str = "cycle") -> PropertyGraph:
    """A directed cycle of ``num_nodes`` nodes — the minimal non-terminating WALK input."""
    graph = PropertyGraph(name=name)
    for index in range(num_nodes):
        graph.add_node(f"v{index}", "Person", {"name": f"p{index}"})
    for index in range(num_nodes):
        target = (index + 1) % num_nodes
        graph.add_edge(f"c{index}", f"v{index}", f"v{target}", label, {})
    return graph


def grid_graph(rows: int, cols: int, label: str = _DEFAULT_LABEL, name: str = "grid") -> PropertyGraph:
    """A directed grid with right and down edges — many equal-length shortest paths."""
    graph = PropertyGraph(name=name)
    for row in range(rows):
        for col in range(cols):
            graph.add_node(f"v{row}_{col}", "Cell", {"row": row, "col": col})
    edge_index = 0
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                graph.add_edge(
                    f"g{edge_index}", f"v{row}_{col}", f"v{row}_{col + 1}", label, {"dir": "right"}
                )
                edge_index += 1
            if row + 1 < rows:
                graph.add_edge(
                    f"g{edge_index}", f"v{row}_{col}", f"v{row + 1}_{col}", label, {"dir": "down"}
                )
                edge_index += 1
    return graph


def binary_tree_graph(depth: int, label: str = _DEFAULT_LABEL, name: str = "tree") -> PropertyGraph:
    """A complete binary tree of the given depth with edges oriented towards the leaves."""
    graph = PropertyGraph(name=name)
    total = 2 ** (depth + 1) - 1
    for index in range(total):
        graph.add_node(f"v{index}", "Node", {"depth": index.bit_length() - 1 if index else 0})
    edge_index = 0
    for index in range(total):
        for child in (2 * index + 1, 2 * index + 2):
            if child < total:
                graph.add_edge(f"t{edge_index}", f"v{index}", f"v{child}", label, {})
                edge_index += 1
    return graph


def random_graph(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str] = ("Knows", "Likes", "Has_creator"),
    seed: int = 0,
    name: str = "random",
    allow_self_loops: bool = False,
) -> PropertyGraph:
    """A uniform random directed multigraph with labels drawn from ``labels``."""
    rng = random.Random(seed)
    graph = PropertyGraph(name=name)
    node_label_choices = ("Person", "Message")
    for index in range(num_nodes):
        graph.add_node(
            f"v{index}",
            rng.choice(node_label_choices),
            {"name": f"p{index}", "age": rng.randint(18, 80)},
        )
    node_ids = graph.node_ids()
    for index in range(num_edges):
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        if not allow_self_loops:
            while target == source and num_nodes > 1:
                target = rng.choice(node_ids)
        graph.add_edge(f"r{index}", source, target, rng.choice(list(labels)), {"w": rng.random()})
    return graph


def layered_graph(
    layers: int,
    width: int,
    label: str = _DEFAULT_LABEL,
    fanout: int = 2,
    seed: int = 0,
    name: str = "layered",
) -> PropertyGraph:
    """A DAG of ``layers`` layers of ``width`` nodes with ``fanout`` edges per node.

    Layered DAGs produce exponentially many distinct walks without any cycles,
    which stresses the recursion without hitting the Walk termination guard.
    """
    rng = random.Random(seed)
    graph = PropertyGraph(name=name)
    for layer in range(layers):
        for slot in range(width):
            graph.add_node(f"v{layer}_{slot}", "Person", {"layer": layer, "slot": slot})
    edge_index = 0
    for layer in range(layers - 1):
        for slot in range(width):
            targets = rng.sample(range(width), k=min(fanout, width))
            for target in targets:
                graph.add_edge(
                    f"l{edge_index}", f"v{layer}_{slot}", f"v{layer + 1}_{target}", label, {}
                )
                edge_index += 1
    return graph


def scale_free_graph(
    num_nodes: int,
    edges_per_node: int = 2,
    labels: Sequence[str] = ("Knows",),
    seed: int = 0,
    name: str = "scale_free",
) -> PropertyGraph:
    """A Barabási–Albert-style preferential-attachment graph (skewed degrees).

    Social networks such as LDBC SNB exhibit heavy-tailed degree distributions;
    this generator produces the same skew so label-selectivity and join-size
    effects resemble the paper's motivating workload.
    """
    rng = random.Random(seed)
    graph = PropertyGraph(name=name)
    for index in range(num_nodes):
        graph.add_node(f"v{index}", "Person", {"name": f"p{index}"})
    degree_pool: list[int] = []
    edge_index = 0
    for index in range(num_nodes):
        if index == 0:
            degree_pool.append(0)
            continue
        attachments = min(edges_per_node, index)
        chosen: set[int] = set()
        while len(chosen) < attachments:
            if degree_pool and rng.random() < 0.8:
                candidate = rng.choice(degree_pool)
            else:
                candidate = rng.randrange(index)
            if candidate != index:
                chosen.add(candidate)
        for target in chosen:
            graph.add_edge(
                f"s{edge_index}", f"v{index}", f"v{target}", rng.choice(list(labels)), {}
            )
            degree_pool.extend([index, target])
            edge_index += 1
    return graph


def complete_graph(num_nodes: int, label: str = _DEFAULT_LABEL, name: str = "complete") -> PropertyGraph:
    """A complete directed graph (every ordered pair of distinct nodes is an edge)."""
    graph = PropertyGraph(name=name)
    for index in range(num_nodes):
        graph.add_node(f"v{index}", "Person", {"name": f"p{index}"})
    edge_index = 0
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source != target:
                graph.add_edge(f"k{edge_index}", f"v{source}", f"v{target}", label, {})
                edge_index += 1
    return graph
