"""The running-example graph of the paper (Figure 1).

Figure 1 shows a snippet of the LDBC Social Network Benchmark graph with
seven nodes (``n1`` .. ``n7``) and eleven edges (``e1`` .. ``e11``) relating
``Person`` and ``Message`` nodes through ``Knows``, ``Likes`` and
``Has_creator`` edges.  The figure itself is a drawing, but the paper text
pins down a large part of its structure, all of which is reproduced here
exactly:

* **Table 3** lists the ``Knows+`` paths and therefore fixes the four Knows
  edges: ``e1: n1 -> n2``, ``e2: n2 -> n3``, ``e3: n3 -> n2`` (the *inner
  cycle*), and ``e4: n2 -> n4``.
* The introduction quotes the two SIMPLE answers of the Moe-to-Apu query:
  ``path1 = (n1, e1, n2, e4, n4)`` and
  ``path2 = (n1, e8, n6, e11, n3, e7, n7, e10, n4)``, whose labels must
  alternate ``Likes / Has_creator`` — fixing ``e8: n1 -> n6 (Likes)``,
  ``e11: n6 -> n3 (Has_creator)``, ``e7: n3 -> n7 (Likes)`` and
  ``e10: n7 -> n4 (Has_creator)``.
* The *outer cycle* "traversing the concatenation of edges labeled Likes and
  Has_creator" requires the Likes/Has_creator chain to close back on itself;
  the two remaining edges close it through the third message node:
  ``e9: n4 -> n5 (Likes)`` and ``e6: n5 -> n1 (Has_creator)``.
* ``e5: n2 -> n5 (Likes)`` is the remaining edge of the figure connecting
  Lisa to a message.
* ``n1`` is named ``Moe`` and ``n4`` is named ``Apu`` (selection conditions
  ``first.name = "Moe"`` and ``last.name = "Apu"`` in Figures 2 and 4).
"""

from __future__ import annotations

from repro.graph.model import PropertyGraph

__all__ = ["figure1_graph", "FIGURE1_NODE_NAMES", "FIGURE1_EDGE_LABELS"]

#: Person/Message names attached to the Figure 1 nodes.
FIGURE1_NODE_NAMES: dict[str, str] = {
    "n1": "Moe",
    "n2": "Lisa",
    "n3": "Bart",
    "n4": "Apu",
    "n5": "msg1",
    "n6": "msg2",
    "n7": "msg3",
}

#: Edge labels of the Figure 1 graph, keyed by edge identifier.
FIGURE1_EDGE_LABELS: dict[str, str] = {
    "e1": "Knows",
    "e2": "Knows",
    "e3": "Knows",
    "e4": "Knows",
    "e5": "Likes",
    "e6": "Has_creator",
    "e7": "Likes",
    "e8": "Likes",
    "e9": "Likes",
    "e10": "Has_creator",
    "e11": "Has_creator",
}


def figure1_graph() -> PropertyGraph:
    """Build and return the Figure 1 property graph.

    Nodes:
        ``n1`` Moe, ``n2`` Lisa, ``n3`` Bart, ``n4`` Apu (``Person``);
        ``n5``, ``n6``, ``n7`` (``Message``).

    Edges (source, target, label):
        ``e1``  n1 -> n2  Knows
        ``e2``  n2 -> n3  Knows        (inner cycle with e3)
        ``e3``  n3 -> n2  Knows
        ``e4``  n2 -> n4  Knows
        ``e5``  n2 -> n5  Likes
        ``e6``  n5 -> n1  Has_creator  (closes the outer cycle)
        ``e7``  n3 -> n7  Likes
        ``e8``  n1 -> n6  Likes
        ``e9``  n4 -> n5  Likes
        ``e10`` n7 -> n4  Has_creator
        ``e11`` n6 -> n3  Has_creator
    """
    graph = PropertyGraph(name="figure1")
    graph.add_node("n1", "Person", {"name": "Moe", "last_name": "Szyslak"})
    graph.add_node("n2", "Person", {"name": "Lisa", "last_name": "Simpson"})
    graph.add_node("n3", "Person", {"name": "Bart", "last_name": "Simpson"})
    graph.add_node("n4", "Person", {"name": "Apu", "last_name": "Nahasapeemapetilon"})
    graph.add_node("n5", "Message", {"content": "Good news everyone!", "length": 19})
    graph.add_node("n6", "Message", {"content": "I am so smart", "length": 13})
    graph.add_node("n7", "Message", {"content": "Thank you, come again", "length": 21})

    # Knows edges (Table 3): inner cycle e2/e3 plus the chain n1 -> n2 -> n4.
    graph.add_edge("e1", "n1", "n2", "Knows", {"since": 2010})
    graph.add_edge("e2", "n2", "n3", "Knows", {"since": 2012})
    graph.add_edge("e3", "n3", "n2", "Knows", {"since": 2012})
    graph.add_edge("e4", "n2", "n4", "Knows", {"since": 2015})

    # Likes / Has_creator edges: the outer cycle
    # n1 -e8-> n6 -e11-> n3 -e7-> n7 -e10-> n4 -e9-> n5 -e6-> n1
    # plus the extra Likes edge e5 from Lisa to msg1.
    graph.add_edge("e5", "n2", "n5", "Likes", {})
    graph.add_edge("e6", "n5", "n1", "Has_creator", {})
    graph.add_edge("e7", "n3", "n7", "Likes", {})
    graph.add_edge("e8", "n1", "n6", "Likes", {})
    graph.add_edge("e9", "n4", "n5", "Likes", {})
    graph.add_edge("e10", "n7", "n4", "Has_creator", {})
    graph.add_edge("e11", "n6", "n3", "Has_creator", {})

    return graph
