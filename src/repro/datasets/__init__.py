"""Example graphs and synthetic data-set generators."""

from repro.datasets.figure1 import FIGURE1_EDGE_LABELS, FIGURE1_NODE_NAMES, figure1_graph
from repro.datasets.generators import (
    binary_tree_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    layered_graph,
    random_graph,
    scale_free_graph,
)
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph

__all__ = [
    "figure1_graph",
    "FIGURE1_NODE_NAMES",
    "FIGURE1_EDGE_LABELS",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "binary_tree_graph",
    "random_graph",
    "layered_graph",
    "scale_free_graph",
    "complete_graph",
    "LDBCParameters",
    "ldbc_like_graph",
]
