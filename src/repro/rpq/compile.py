"""Compilation of regular path expressions into path-algebra plans.

The translation follows the paper's worked figures:

* a label ``l`` becomes ``σ[label(edge(1)) = l](Edges(G))`` (Figures 2–5);
* concatenation ``a/b`` becomes a path join ``a ⋈ b``;
* alternation ``a|b`` becomes a union ``a ∪ b``;
* ``a+`` becomes the recursive operator ``ϕ(a)``;
* ``a*`` becomes ``ϕ(a) ∪ Nodes(G)`` (Figure 4);
* ``a?`` becomes ``a ∪ Nodes(G)``;
* the empty word becomes ``Nodes(G)``;
* the wildcard ``%`` becomes ``Edges(G)``.

The restrictor attached to recursive operators (and an optional length bound
for ϕWalk) are compilation options, so the same regex compiles to any of the
five ϕ variants of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.conditions import Condition, label_of_edge, prop_of_first, prop_of_last
from repro.algebra.expressions import (
    EdgesScan,
    Expression,
    Join,
    NodesScan,
    Recursive,
    Selection,
    Union,
)
from repro.errors import PlanningError
from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)
from repro.rpq.parser import parse_regex
from repro.semantics.restrictors import Restrictor

__all__ = ["CompileOptions", "compile_regex", "compile_pattern", "label_scan"]


@dataclass(frozen=True)
class CompileOptions:
    """Options controlling regex-to-algebra compilation.

    Attributes:
        restrictor: The ϕ variant used for ``*`` and ``+`` (default WALK, the
            GQL default).
        max_length: Optional length bound forwarded to every ϕ node (needed
            for WALK over cyclic graphs).
    """

    restrictor: Restrictor = Restrictor.WALK
    max_length: int | None = None


def label_scan(label: str) -> Selection:
    """Return ``σ[label(edge(1)) = label](Edges(G))`` — the plan atom for one edge label."""
    return Selection(label_of_edge(1, label), EdgesScan())


def compile_regex(regex: RegexNode | str, options: CompileOptions | None = None) -> Expression:
    """Compile a regular path expression into a path-algebra expression tree.

    Args:
        regex: A parsed :class:`~repro.rpq.ast.RegexNode` or a regex string.
        options: Compilation options (restrictor and length bound).

    Returns:
        The logical plan whose evaluation yields exactly the paths whose edge
        label sequence matches ``regex`` (under the chosen restrictor for the
        recursive sub-expressions).
    """
    if isinstance(regex, str):
        regex = parse_regex(regex)
    options = options or CompileOptions()
    return _compile(regex, options)


def _compile(node: RegexNode, options: CompileOptions) -> Expression:
    if isinstance(node, Label):
        return label_scan(node.name)
    if isinstance(node, AnyLabel):
        return EdgesScan()
    if isinstance(node, Epsilon):
        return NodesScan()
    if isinstance(node, Concat):
        return Join(_compile(node.left, options), _compile(node.right, options))
    if isinstance(node, Alternation):
        return Union(_compile(node.left, options), _compile(node.right, options))
    if isinstance(node, Plus):
        return Recursive(_compile(node.operand, options), options.restrictor, options.max_length)
    if isinstance(node, Star):
        recursive = Recursive(
            _compile(node.operand, options), options.restrictor, options.max_length
        )
        return Union(recursive, NodesScan())
    if isinstance(node, Optional):
        return Union(_compile(node.operand, options), NodesScan())
    raise PlanningError(f"cannot compile regex node of type {type(node).__name__}")


def compile_pattern(
    regex: RegexNode | str,
    source_condition: Condition | None = None,
    target_condition: Condition | None = None,
    options: CompileOptions | None = None,
) -> Expression:
    """Compile a full path pattern ``(x)-[regex]->(y)`` including endpoint conditions.

    ``source_condition`` and ``target_condition`` are applied to the first and
    last node of every result path via a selection at the root, which mirrors
    the ``σ[first.name = "Moe" ∧ last.name = "Apu"]`` root of Figures 2 and 4.
    """
    plan = compile_regex(regex, options)
    condition: Condition | None = None
    if source_condition is not None and target_condition is not None:
        condition = source_condition & target_condition
    elif source_condition is not None:
        condition = source_condition
    elif target_condition is not None:
        condition = target_condition
    if condition is not None:
        plan = Selection(condition, plan)
    return plan


def endpoint_property_conditions(
    source_properties: dict | None = None,
    target_properties: dict | None = None,
) -> tuple[Condition | None, Condition | None]:
    """Build endpoint conditions from property dictionaries.

    ``{"name": "Moe"}`` for the source becomes ``first.name = "Moe"``;
    multiple properties are combined with conjunction.
    """
    def build(properties: dict | None, factory) -> Condition | None:
        if not properties:
            return None
        conditions = [factory(name, value) for name, value in properties.items()]
        result = conditions[0]
        for extra in conditions[1:]:
            result = result & extra
        return result

    return (
        build(source_properties, prop_of_first),
        build(target_properties, prop_of_last),
    )
