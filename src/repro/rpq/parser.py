"""Parser for regular path expressions.

The concrete syntax follows the GQL-like notation used in the paper:

* labels are bare identifiers, optionally prefixed with ``:`` (``Knows`` or
  ``:Knows``); quoted labels (``"Has creator"``) allow spaces;
* ``/`` is concatenation, ``|`` is alternation;
* postfix ``*``, ``+`` and ``?`` are the closure operators;
* ``%`` is the any-label wildcard, ``()`` is the empty word;
* parentheses group.

Operator precedence (loosest to tightest): ``|``, ``/``, postfix closure.

The grammar::

    alternation   := concatenation ('|' concatenation)*
    concatenation := closure ('/' closure)*
    closure       := atom ('*' | '+' | '?')*
    atom          := LABEL | '%' | '(' alternation ')' | '(' ')'
"""

from __future__ import annotations

from repro.errors import RegexSyntaxError
from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)

__all__ = ["parse_regex", "RegexParser"]


class _Token:
    """A lexical token with its position (for error reporting)."""

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r}, {self.position})"


_SINGLE_CHAR_TOKENS = {
    "/": "SLASH",
    "|": "PIPE",
    "*": "STAR",
    "+": "PLUS",
    "?": "QUESTION",
    "(": "LPAREN",
    ")": "RPAREN",
    "%": "PERCENT",
}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _SINGLE_CHAR_TOKENS:
            tokens.append(_Token(_SINGLE_CHAR_TOKENS[char], char, index))
            index += 1
            continue
        if char == ":":
            index += 1
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end == -1:
                raise RegexSyntaxError("unterminated quoted label", index)
            tokens.append(_Token("LABEL", text[index + 1 : end], index))
            index = end + 1
            continue
        if char.isalnum() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(_Token("LABEL", text[start:index], start))
            continue
        raise RegexSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(_Token("EOF", "", length))
    return tokens


class RegexParser:
    """Recursive-descent parser producing :class:`~repro.rpq.ast.RegexNode` trees."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise RegexSyntaxError(
                f"expected {kind} but found {token.value or 'end of input'!r}", token.position
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> RegexNode:
        """Parse the whole input and return the AST root."""
        node = self._alternation()
        token = self._peek()
        if token.kind != "EOF":
            raise RegexSyntaxError(f"unexpected trailing input {token.value!r}", token.position)
        return node

    def _alternation(self) -> RegexNode:
        node = self._concatenation()
        while self._peek().kind == "PIPE":
            self._advance()
            right = self._concatenation()
            node = Alternation(node, right)
        return node

    def _concatenation(self) -> RegexNode:
        node = self._closure()
        while self._peek().kind == "SLASH":
            self._advance()
            right = self._closure()
            node = Concat(node, right)
        return node

    def _closure(self) -> RegexNode:
        node = self._atom()
        while self._peek().kind in ("STAR", "PLUS", "QUESTION"):
            token = self._advance()
            if token.kind == "STAR":
                node = Star(node)
            elif token.kind == "PLUS":
                node = Plus(node)
            else:
                node = Optional(node)
        return node

    def _atom(self) -> RegexNode:
        token = self._peek()
        if token.kind == "LABEL":
            self._advance()
            return Label(token.value)
        if token.kind == "PERCENT":
            self._advance()
            return AnyLabel()
        if token.kind == "LPAREN":
            self._advance()
            if self._peek().kind == "RPAREN":
                self._advance()
                return Epsilon()
            node = self._alternation()
            self._expect("RPAREN")
            return node
        raise RegexSyntaxError(
            f"expected a label, '%' or '(' but found {token.value or 'end of input'!r}",
            token.position,
        )


def parse_regex(text: str) -> RegexNode:
    """Parse a regular path expression such as ``(:Knows+)|(:Likes/:Has_creator)*``."""
    if not text or not text.strip():
        raise RegexSyntaxError("empty regular expression", 0)
    return RegexParser(text).parse()
