"""Abstract syntax of regular path expressions (RPQ regexes).

The regular expressions of GQL path patterns are built from edge labels with
concatenation (``/``), alternation (``|``), Kleene star (``*``), Kleene plus
(``+``) and the optional operator (``?``).  The AST nodes defined here are
immutable and hashable, support structural equality, and render back to the
concrete syntax accepted by :mod:`repro.rpq.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RegexNode",
    "Label",
    "AnyLabel",
    "Concat",
    "Alternation",
    "Star",
    "Plus",
    "Optional",
    "Epsilon",
    "concat",
    "alternation",
]


@dataclass(frozen=True)
class RegexNode:
    """Abstract base class of regular path expression nodes."""

    def children(self) -> tuple["RegexNode", ...]:
        """Return child expressions (empty for leaves)."""
        return ()

    def nullable(self) -> bool:
        """Return ``True`` if the expression matches the empty word (a length-zero path)."""
        raise NotImplementedError

    def labels(self) -> set[str]:
        """Return the set of edge labels mentioned by the expression."""
        result: set[str] = set()
        for child in self.children():
            result |= child.labels()
        return result

    def min_path_length(self) -> int:
        """Length of the shortest word the expression matches."""
        raise NotImplementedError

    def is_recursive(self) -> bool:
        """Return ``True`` if the expression contains a ``*`` or ``+`` operator."""
        return any(isinstance(node, (Star, Plus)) for node in self.iter_subtree())

    def iter_subtree(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.iter_subtree()


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The empty-word expression (matches only length-zero paths)."""

    def nullable(self) -> bool:
        return True

    def min_path_length(self) -> int:
        return 0

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Label(RegexNode):
    """A single edge label, e.g. ``Knows``."""

    name: str

    def nullable(self) -> bool:
        return False

    def labels(self) -> set[str]:
        return {self.name}

    def min_path_length(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnyLabel(RegexNode):
    """The wildcard label (written ``%``): matches any single edge."""

    def nullable(self) -> bool:
        return False

    def min_path_length(self) -> int:
        return 1

    def __str__(self) -> str:
        return "%"


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation ``left / right``."""

    left: RegexNode
    right: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def min_path_length(self) -> int:
        return self.left.min_path_length() + self.right.min_path_length()

    def __str__(self) -> str:
        return f"{_wrap(self.left)}/{_wrap(self.right)}"


@dataclass(frozen=True)
class Alternation(RegexNode):
    """Alternation ``left | right``."""

    left: RegexNode
    right: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def min_path_length(self) -> int:
        return min(self.left.min_path_length(), self.right.min_path_length())

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


@dataclass(frozen=True)
class Star(RegexNode):
    """Kleene star ``operand*`` (zero or more repetitions)."""

    operand: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return True

    def min_path_length(self) -> int:
        return 0

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}*"


@dataclass(frozen=True)
class Plus(RegexNode):
    """Kleene plus ``operand+`` (one or more repetitions)."""

    operand: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return self.operand.nullable()

    def min_path_length(self) -> int:
        return self.operand.min_path_length()

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}+"


@dataclass(frozen=True)
class Optional(RegexNode):
    """Optional ``operand?`` (zero or one occurrence)."""

    operand: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return True

    def min_path_length(self) -> int:
        return 0

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}?"


def _wrap(node: RegexNode) -> str:
    """Parenthesize composite operands so rendered strings re-parse unambiguously."""
    if isinstance(node, (Concat, Alternation)):
        return f"({node})"
    return str(node)


def concat(*nodes: RegexNode) -> RegexNode:
    """Left-fold a sequence of expressions into nested :class:`Concat` nodes."""
    if not nodes:
        return Epsilon()
    result = nodes[0]
    for node in nodes[1:]:
        result = Concat(result, node)
    return result


def alternation(*nodes: RegexNode) -> RegexNode:
    """Left-fold a sequence of expressions into nested :class:`Alternation` nodes."""
    if not nodes:
        raise ValueError("alternation requires at least one operand")
    result = nodes[0]
    for node in nodes[1:]:
        result = Alternation(result, node)
    return result
