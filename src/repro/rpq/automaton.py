"""Finite automata for regular path expressions.

The automaton-based evaluation strategy of Section 8.2 ("traverse the graph
while tracking the states of an automaton constructed from the regular
expression") needs a nondeterministic finite automaton over the alphabet of
edge labels.  This module builds a Thompson-style NFA (with epsilon
transitions) from a :class:`~repro.rpq.ast.RegexNode`, offers epsilon-closure
computation, word acceptance, and a determinized view used by the baseline
product-graph algorithm in :mod:`repro.baselines.automaton_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)
from repro.rpq.parser import parse_regex

__all__ = ["NFA", "build_nfa", "ANY_LABEL"]

#: Symbol used on transitions that match any edge label (the ``%`` wildcard).
ANY_LABEL = "%any%"

#: Symbol used for epsilon transitions.
_EPSILON = None


@dataclass
class NFA:
    """A nondeterministic finite automaton over edge labels.

    States are integers; ``transitions[state]`` is a list of
    ``(symbol, target)`` pairs where ``symbol`` is an edge label,
    :data:`ANY_LABEL`, or ``None`` for an epsilon move.
    """

    start: int = 0
    accepting: set[int] = field(default_factory=set)
    transitions: dict[int, list[tuple[str | None, int]]] = field(default_factory=dict)
    num_states: int = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def new_state(self) -> int:
        """Allocate and return a fresh state."""
        state = self.num_states
        self.num_states += 1
        self.transitions.setdefault(state, [])
        return state

    def add_transition(self, source: int, symbol: str | None, target: int) -> None:
        """Add a transition; ``symbol=None`` is an epsilon move."""
        self.transitions.setdefault(source, []).append((symbol, target))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """Return the set of states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for symbol, target in self.transitions.get(state, ()):
                if symbol is _EPSILON and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: frozenset[int], label: str | None) -> frozenset[int]:
        """Advance the state set over one edge carrying ``label``."""
        moved: set[int] = set()
        for state in states:
            for symbol, target in self.transitions.get(state, ()):
                if symbol is _EPSILON:
                    continue
                if symbol == ANY_LABEL or symbol == label:
                    moved.add(target)
        return self.epsilon_closure(moved)

    def initial_states(self) -> frozenset[int]:
        """Return the epsilon closure of the start state."""
        return self.epsilon_closure([self.start])

    def is_accepting(self, states: frozenset[int]) -> bool:
        """Return ``True`` if any state in ``states`` is accepting."""
        return bool(self.accepting & states)

    def accepts(self, word: Iterable[str | None]) -> bool:
        """Return ``True`` if the automaton accepts the given sequence of edge labels."""
        states = self.initial_states()
        for label in word:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)

    def alphabet(self) -> set[str]:
        """Return the set of concrete labels appearing on transitions."""
        result: set[str] = set()
        for moves in self.transitions.values():
            for symbol, _ in moves:
                if symbol is not _EPSILON and symbol != ANY_LABEL:
                    result.add(symbol)
        return result

    def matches_empty_word(self) -> bool:
        """Return ``True`` if the automaton accepts the empty word (length-zero paths)."""
        return self.is_accepting(self.initial_states())


def build_nfa(regex: RegexNode | str) -> NFA:
    """Build a Thompson NFA for ``regex``."""
    if isinstance(regex, str):
        regex = parse_regex(regex)
    nfa = NFA()
    start = nfa.new_state()
    end = nfa.new_state()
    nfa.start = start
    nfa.accepting = {end}
    _build(regex, nfa, start, end)
    return nfa


def _build(node: RegexNode, nfa: NFA, source: int, target: int) -> None:
    """Wire ``node`` between ``source`` and ``target`` using fresh intermediate states."""
    if isinstance(node, Epsilon):
        nfa.add_transition(source, _EPSILON, target)
        return
    if isinstance(node, Label):
        nfa.add_transition(source, node.name, target)
        return
    if isinstance(node, AnyLabel):
        nfa.add_transition(source, ANY_LABEL, target)
        return
    if isinstance(node, Concat):
        middle = nfa.new_state()
        _build(node.left, nfa, source, middle)
        _build(node.right, nfa, middle, target)
        return
    if isinstance(node, Alternation):
        _build(node.left, nfa, source, target)
        _build(node.right, nfa, source, target)
        return
    if isinstance(node, Star):
        inner_start = nfa.new_state()
        inner_end = nfa.new_state()
        nfa.add_transition(source, _EPSILON, inner_start)
        nfa.add_transition(source, _EPSILON, target)
        nfa.add_transition(inner_end, _EPSILON, inner_start)
        nfa.add_transition(inner_end, _EPSILON, target)
        _build(node.operand, nfa, inner_start, inner_end)
        return
    if isinstance(node, Plus):
        inner_start = nfa.new_state()
        inner_end = nfa.new_state()
        nfa.add_transition(source, _EPSILON, inner_start)
        nfa.add_transition(inner_end, _EPSILON, inner_start)
        nfa.add_transition(inner_end, _EPSILON, target)
        _build(node.operand, nfa, inner_start, inner_end)
        return
    if isinstance(node, Optional):
        nfa.add_transition(source, _EPSILON, target)
        _build(node.operand, nfa, source, target)
        return
    raise TypeError(f"cannot build an NFA for {type(node).__name__}")
