"""Regular path queries: regex AST, parser, automata, and compilation to algebra."""

from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    alternation,
    concat,
)
from repro.rpq.automaton import ANY_LABEL, NFA, build_nfa
from repro.rpq.compile import (
    CompileOptions,
    compile_pattern,
    compile_regex,
    endpoint_property_conditions,
    label_scan,
)
from repro.rpq.parser import RegexParser, parse_regex

__all__ = [
    "RegexNode",
    "Label",
    "AnyLabel",
    "Concat",
    "Alternation",
    "Star",
    "Plus",
    "Optional",
    "Epsilon",
    "concat",
    "alternation",
    "parse_regex",
    "RegexParser",
    "NFA",
    "build_nfa",
    "ANY_LABEL",
    "CompileOptions",
    "compile_regex",
    "compile_pattern",
    "label_scan",
    "endpoint_property_conditions",
]
