"""Fluent builder for property graphs.

:class:`GraphBuilder` offers a compact way to declare graphs in examples and
tests, with automatic identifier generation and chained calls::

    graph = (
        GraphBuilder("social")
        .node("n1", "Person", name="Moe")
        .node("n2", "Person", name="Lisa")
        .edge("n1", "n2", "Knows", id="e1")
        .build()
    )
"""

from __future__ import annotations

from typing import Any

from repro.graph.model import PropertyGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally construct a :class:`~repro.graph.model.PropertyGraph`."""

    def __init__(self, name: str = "G") -> None:
        self._graph = PropertyGraph(name=name)
        self._auto_node = 0
        self._auto_edge = 0

    def node(self, node_id: str | None = None, label: str | None = None, **properties: Any) -> "GraphBuilder":
        """Add a node; generates ``n<k>`` identifiers when ``node_id`` is omitted."""
        if node_id is None:
            self._auto_node += 1
            node_id = f"n{self._auto_node}"
        self._graph.add_node(node_id, label, properties)
        return self

    def edge(
        self,
        source: str,
        target: str,
        label: str | None = None,
        id: str | None = None,
        **properties: Any,
    ) -> "GraphBuilder":
        """Add an edge; generates ``e<k>`` identifiers when ``id`` is omitted."""
        if id is None:
            self._auto_edge += 1
            id = f"e{self._auto_edge}"
        self._graph.add_edge(id, source, target, label, properties)
        return self

    def chain(self, node_ids: list[str], label: str) -> "GraphBuilder":
        """Add edges forming a chain ``n0 -> n1 -> ... -> nk`` with the given label."""
        for source, target in zip(node_ids, node_ids[1:]):
            self.edge(source, target, label)
        return self

    def cycle(self, node_ids: list[str], label: str) -> "GraphBuilder":
        """Add edges forming a directed cycle over ``node_ids`` with the given label."""
        if not node_ids:
            return self
        self.chain(node_ids, label)
        self.edge(node_ids[-1], node_ids[0], label)
        return self

    def build(self) -> PropertyGraph:
        """Return the constructed graph."""
        return self._graph
