"""Immutable, version-pinned views of a :class:`~repro.graph.model.PropertyGraph`.

A :class:`GraphSnapshot` is the unit of *snapshot isolation* for the
concurrent query service: it exposes the full read API of
:class:`~repro.graph.model.PropertyGraph` but answers every call as of the
version at which the snapshot was taken.  Because the property graph is
append-only (objects are immutable, there is no delete or update), a snapshot
never copies anything — it filters reads by the version at which each object
was added, so taking one is O(1) and holding many is free.

Thread-safety model:

* mutations on the parent graph serialize on the parent's lock and publish
  each object (and its version) *before* linking it into any index;
* snapshot reads are lock-free: they only perform dict lookups and indexed
  list reads on append-only containers, which are safe under the GIL while a
  writer appends.  Dict *iteration* would not be (a concurrent insert can
  resize the table mid-iteration), which is why the parent also maintains
  append-only node/edge lists that snapshots slice instead.

Snapshots are created via :meth:`PropertyGraph.snapshot` (which holds the
parent lock for the version/size capture) — never directly.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import FrozenGraphError, UnknownObjectError
from repro.graph.model import Edge, Node, PropertyGraph, materialize

__all__ = ["GraphSnapshot"]


class GraphSnapshot:
    """A read-only view of a :class:`PropertyGraph` pinned to one version.

    Implements the whole read surface of :class:`PropertyGraph` (duck-typed:
    the evaluator, the physical pipeline, the cost model and the baselines all
    accept either), while every mutator raises
    :class:`~repro.errors.FrozenGraphError`.
    """

    __slots__ = ("_parent", "_version", "_num_nodes", "_num_edges", "name")

    def __init__(
        self, parent: PropertyGraph, version: int, num_nodes: int, num_edges: int
    ) -> None:
        self._parent = parent
        self._version = version
        self._num_nodes = num_nodes
        self._num_edges = num_edges
        self.name = f"{parent.name}@v{version}"

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The parent graph's mutation counter at snapshot time (pinned)."""
        return self._version

    @property
    def parent(self) -> PropertyGraph:
        """The live graph this snapshot is a view of."""
        return self._parent

    @property
    def frozen(self) -> bool:
        """Snapshots are always frozen."""
        return True

    def snapshot(self) -> "GraphSnapshot":
        """A snapshot of a snapshot is itself (it is already immutable)."""
        return self

    def freeze(self) -> "GraphSnapshot":
        """Snapshots are born frozen; returns self for API symmetry."""
        return self

    def compact_core(self):
        """The parent's columnar core when it matches this snapshot's version.

        A snapshot pinned at version ``v`` can only use a
        :class:`~repro.graph.compact.CompactGraph` built at exactly ``v``:
        an older core would miss objects this snapshot sees, a newer one
        would leak objects it must not.  Returns ``None`` otherwise (the
        closure engine then runs the object path against the view).
        """
        compact = self._parent._compact
        if compact is not None and compact.version == self._version:
            return compact
        return None

    # ------------------------------------------------------------------
    # Mutators — all refused
    # ------------------------------------------------------------------
    def _refuse_mutation(self) -> None:
        raise FrozenGraphError(
            f"{self.name!r} is an immutable snapshot (version {self._version}); "
            "mutate the parent graph instead"
        )

    def add_node(self, *args: Any, **kwargs: Any) -> Node:
        self._refuse_mutation()

    def add_edge(self, *args: Any, **kwargs: Any) -> Edge:
        self._refuse_mutation()

    def add_nodes(self, nodes: Any) -> None:
        self._refuse_mutation()

    def add_edges(self, edges: Any) -> None:
        self._refuse_mutation()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _has_node(self, node_id: str) -> bool:
        added = self._parent._node_version.get(node_id)
        return added is not None and added <= self._version

    def _has_edge(self, edge_id: str) -> bool:
        added = self._parent._edge_version.get(edge_id)
        return added is not None and added <= self._version

    def has_node(self, node_id: str) -> bool:
        """Return ``True`` if ``node_id`` identified a node as of this version."""
        return self._has_node(node_id)

    def has_edge(self, edge_id: str) -> bool:
        """Return ``True`` if ``edge_id`` identified an edge as of this version."""
        return self._has_edge(edge_id)

    def __contains__(self, object_id: object) -> bool:
        return isinstance(object_id, str) and (
            self._has_node(object_id) or self._has_edge(object_id)
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with identifier ``node_id`` as of this version."""
        if not self._has_node(node_id):
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return self._parent._nodes[node_id]

    def edge(self, edge_id: str) -> Edge:
        """Return the edge with identifier ``edge_id`` as of this version."""
        if not self._has_edge(edge_id):
            raise UnknownObjectError(f"unknown edge: {edge_id!r}")
        return self._parent._edges[edge_id]

    def object(self, object_id: str) -> Node | Edge:
        """Return the node or edge with the given identifier as of this version."""
        if self._has_node(object_id):
            return self._parent._nodes[object_id]
        if self._has_edge(object_id):
            return self._parent._edges[object_id]
        raise UnknownObjectError(f"unknown object: {object_id!r}")

    def label_of(self, object_id: str) -> str | None:
        """Return ``lambda(o)`` for a node or edge identifier (``None`` if unlabeled)."""
        return self.object(object_id).label

    def property_of(self, object_id: str, name: str, default: Any = None) -> Any:
        """Return ``nu(o, name)`` for a node or edge identifier."""
        return self.object(object_id).property(name, default)

    def nodes(self) -> list[Node]:
        """Return the nodes present at snapshot time (insertion order)."""
        return self._parent._node_list[: self._num_nodes]

    def edges(self) -> list[Edge]:
        """Return the edges present at snapshot time (insertion order)."""
        return self._parent._edge_list[: self._num_edges]

    def node_ids(self) -> list[str]:
        """Return the node identifiers present at snapshot time."""
        return [node.id for node in self.nodes()]

    def edge_ids(self) -> list[str]:
        """Return the edge identifiers present at snapshot time."""
        return [edge.id for edge in self.edges()]

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over the nodes present at snapshot time."""
        return iter(self.nodes())

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over the edges present at snapshot time."""
        return iter(self.edges())

    # ------------------------------------------------------------------
    # Adjacency and label indexes (filtered by version)
    # ------------------------------------------------------------------
    def out_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose source is ``node_id``, as of this version."""
        if not self._has_node(node_id):
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        parent = self._parent
        edge_version = parent._edge_version
        return [
            parent._edges[eid]
            for eid in parent._out[node_id]
            if edge_version[eid] <= self._version
        ]

    def in_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose target is ``node_id``, as of this version."""
        if not self._has_node(node_id):
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        parent = self._parent
        edge_version = parent._edge_version
        return [
            parent._edges[eid]
            for eid in parent._in[node_id]
            if edge_version[eid] <= self._version
        ]

    def out_degree(self, node_id: str) -> int:
        """Return the number of outgoing edges of ``node_id`` as of this version."""
        if not self._has_node(node_id):
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        edge_version = self._parent._edge_version
        return sum(
            1 for eid in self._parent._out[node_id] if edge_version[eid] <= self._version
        )

    def in_degree(self, node_id: str) -> int:
        """Return the number of incoming edges of ``node_id`` as of this version."""
        if not self._has_node(node_id):
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        edge_version = self._parent._edge_version
        return sum(
            1 for eid in self._parent._in[node_id] if edge_version[eid] <= self._version
        )

    def neighbors(self, node_id: str) -> list[str]:
        """Return target node identifiers reachable via one outgoing edge."""
        return [edge.target for edge in self.out_edges(node_id)]

    def nodes_by_label(self, label: str) -> list[Node]:
        """Return the nodes labelled ``label`` as of this version."""
        parent = self._parent
        node_version = parent._node_version
        return [
            parent._nodes[nid]
            for nid in parent._nodes_by_label.get(label, ())
            if node_version[nid] <= self._version
        ]

    def edges_by_label(self, label: str) -> list[Edge]:
        """Return the edges labelled ``label`` as of this version."""
        parent = self._parent
        edge_version = parent._edge_version
        return [
            parent._edges[eid]
            for eid in parent._edges_by_label.get(label, ())
            if edge_version[eid] <= self._version
        ]

    def node_labels(self) -> set[str]:
        """Return the labels used by at least one node as of this version."""
        # list(dict) is a single atomic snapshot of the keys; the per-label
        # filter then discards labels introduced only after this version.
        return {
            label for label in list(self._parent._nodes_by_label) if self.nodes_by_label(label)
        }

    def edge_labels(self) -> set[str]:
        """Return the labels used by at least one edge as of this version."""
        return {
            label for label in list(self._parent._edges_by_label) if self.edges_by_label(label)
        }

    # ------------------------------------------------------------------
    # Size and dunder protocol
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        """Return ``|N|`` as of this version."""
        return self._num_nodes

    def num_edges(self) -> int:
        """Return ``|E|`` as of this version."""
        return self._num_edges

    def order(self) -> int:
        """Synonym for :meth:`num_nodes` (graph-theory terminology)."""
        return self._num_nodes

    def size(self) -> int:
        """Synonym for :meth:`num_edges` (graph-theory terminology)."""
        return self._num_edges

    def __len__(self) -> int:
        return self._num_nodes + self._num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSnapshot(name={self.name!r}, version={self._version}, "
            f"nodes={self._num_nodes}, edges={self._num_edges})"
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> PropertyGraph:
        """Materialize the snapshot as an independent mutable :class:`PropertyGraph`."""
        return materialize(self, name or self.name)

    def subgraph_by_edge_labels(
        self, labels: Any, name: str | None = None
    ) -> PropertyGraph:
        """Return the subgraph keeping every node but only edges with one of ``labels``."""
        wanted = set(labels)
        return materialize(
            self, name or f"{self.name}[{','.join(sorted(wanted))}]", edge_labels=wanted
        )
