"""Structural validation of property graphs.

:func:`validate_graph` re-checks the invariants of Definition 2.1 on an
already-constructed graph.  :class:`PropertyGraph` enforces these invariants
during construction, so this module mostly matters when graphs are loaded
from external files or assembled by generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.model import PropertyGraph

__all__ = ["ValidationReport", "validate_graph"]


@dataclass
class ValidationReport:
    """Outcome of validating a property graph."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Return ``True`` when no structural errors were found."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`GraphError` summarizing all errors, if any."""
        if self.errors:
            raise GraphError("invalid property graph: " + "; ".join(self.errors))


def validate_graph(graph: PropertyGraph) -> ValidationReport:
    """Validate Definition 2.1 invariants and return a :class:`ValidationReport`.

    Checks performed:

    * node and edge identifier sets are disjoint;
    * every edge's endpoints are known nodes (``rho`` is total);
    * labels are strings when present;
    * property names are strings.

    Warnings (non-fatal): isolated nodes and unlabeled edges, which are legal
    but frequently indicate loader bugs.
    """
    report = ValidationReport()
    node_ids = set(graph.node_ids())
    edge_ids = set(graph.edge_ids())

    overlap = node_ids & edge_ids
    if overlap:
        report.errors.append(f"node/edge identifier overlap: {sorted(overlap)}")

    for edge in graph.iter_edges():
        if edge.source not in node_ids:
            report.errors.append(f"edge {edge.id!r} has unknown source {edge.source!r}")
        if edge.target not in node_ids:
            report.errors.append(f"edge {edge.id!r} has unknown target {edge.target!r}")
        if edge.label is not None and not isinstance(edge.label, str):
            report.errors.append(f"edge {edge.id!r} has a non-string label")
        for key in edge.properties:
            if not isinstance(key, str):
                report.errors.append(f"edge {edge.id!r} has a non-string property name {key!r}")
        if edge.label is None:
            report.warnings.append(f"edge {edge.id!r} is unlabeled")

    for node in graph.iter_nodes():
        if node.label is not None and not isinstance(node.label, str):
            report.errors.append(f"node {node.id!r} has a non-string label")
        for key in node.properties:
            if not isinstance(key, str):
                report.errors.append(f"node {node.id!r} has a non-string property name {key!r}")
        if graph.out_degree(node.id) == 0 and graph.in_degree(node.id) == 0:
            report.warnings.append(f"node {node.id!r} is isolated")

    return report
