"""Property-graph data model (paper Section 2.1) and supporting utilities."""

from repro.graph.builder import GraphBuilder
from repro.graph.compact import AutoCompactPolicy, CompactGraph, compact_core_of
from repro.graph.delta import GraphDelta, QueryFootprint
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_csv,
    load_json,
    save_csv,
    save_json,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.graph.stats import (
    GraphStatistics,
    compute_statistics,
    has_directed_cycle,
    label_selectivity,
)
from repro.graph.validation import ValidationReport, validate_graph
from repro.graph.wal import (
    CrashPoint,
    DurableStore,
    SimulatedCrash,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "Node",
    "Edge",
    "PropertyGraph",
    "GraphSnapshot",
    "GraphBuilder",
    "CompactGraph",
    "compact_core_of",
    "AutoCompactPolicy",
    "GraphDelta",
    "QueryFootprint",
    "WriteAheadLog",
    "DurableStore",
    "CrashPoint",
    "SimulatedCrash",
    "read_wal",
    "GraphStatistics",
    "compute_statistics",
    "has_directed_cycle",
    "label_selectivity",
    "ValidationReport",
    "validate_graph",
    "graph_to_dict",
    "graph_from_dict",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
]
