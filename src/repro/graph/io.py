"""Serialization of property graphs to and from JSON and CSV.

Two formats are supported:

* **JSON** — a single document with ``nodes`` and ``edges`` arrays; lossless
  for any property value JSON can represent.
* **CSV** — a pair of files (``<prefix>_nodes.csv`` / ``<prefix>_edges.csv``)
  in the flat layout used by the LDBC SNB interactive data sets and by most
  graph-database bulk loaders.  All property values round-trip as strings.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import GraphError
from repro.graph.model import PropertyGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
]

_RESERVED_NODE_FIELDS = ("id", "label")
_RESERVED_EDGE_FIELDS = ("id", "source", "target", "label")


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Return a JSON-serializable dictionary representation of ``graph``.

    The mutation counter is included so a restored graph resumes versioning
    where the original left off — required by the WAL, whose records are
    keyed by version, and by anything that persists version-tagged state.
    """
    return {
        "name": graph.name,
        "version": graph.version,
        "nodes": [
            {"id": node.id, "label": node.label, "properties": dict(node.properties)}
            for node in graph.iter_nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "properties": dict(edge.properties),
            }
            for edge in graph.iter_edges()
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> PropertyGraph:
    """Reconstruct a :class:`PropertyGraph` from :func:`graph_to_dict` output.

    A ``"version"`` entry (written since the durability work) fast-forwards
    the rebuilt graph's mutation counter, so versioning resumes where the
    serialized graph left off instead of restarting at the object count.
    """
    if "nodes" not in data or "edges" not in data:
        raise GraphError("graph dictionary must contain 'nodes' and 'edges' keys")
    graph = PropertyGraph(name=data.get("name", "G"))
    try:
        for node in data["nodes"]:
            graph.add_node(node["id"], node.get("label"), node.get("properties") or {})
        for edge in data["edges"]:
            graph.add_edge(
                edge["id"],
                edge["source"],
                edge["target"],
                edge.get("label"),
                edge.get("properties") or {},
            )
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph dictionary: {exc!r}") from exc
    version = data.get("version")
    if version is not None:
        if not isinstance(version, int) or version < graph.version:
            raise GraphError(
                f"malformed graph dictionary: version {version!r} is below the "
                f"object count ({graph.version} mutations were replayed)"
            )
        graph._fast_forward_version(version)
    return graph


def save_json(graph: PropertyGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as a JSON document."""
    payload = graph_to_dict(graph)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)


def load_json(path: str | Path) -> PropertyGraph:
    """Read a graph previously written by :func:`save_json`.

    Raises:
        GraphError: if the file is not valid JSON (with line/column context)
            or does not describe a graph.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphError(
                f"invalid JSON in {path} (line {exc.lineno}, column {exc.colno}): {exc.msg}"
            ) from exc
    if not isinstance(payload, dict):
        raise GraphError(f"invalid graph document in {path}: expected a JSON object")
    try:
        return graph_from_dict(payload)
    except GraphError as exc:
        raise GraphError(f"{path}: {exc}") from exc


def save_csv(graph: PropertyGraph, prefix: str | Path) -> tuple[Path, Path]:
    """Write ``graph`` to ``<prefix>_nodes.csv`` and ``<prefix>_edges.csv``.

    Returns the two paths written.  Property columns are the union of the
    property names used across nodes (respectively edges).
    """
    prefix = Path(prefix)
    nodes_path = prefix.with_name(prefix.name + "_nodes.csv")
    edges_path = prefix.with_name(prefix.name + "_edges.csv")

    node_props = sorted({key for node in graph.iter_nodes() for key in node.properties})
    edge_props = sorted({key for edge in graph.iter_edges() for key in edge.properties})

    with open(nodes_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(_RESERVED_NODE_FIELDS) + node_props)
        for node in graph.iter_nodes():
            row = [node.id, node.label or ""]
            row.extend(node.properties.get(key, "") for key in node_props)
            writer.writerow(row)

    with open(edges_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(_RESERVED_EDGE_FIELDS) + edge_props)
        for edge in graph.iter_edges():
            row = [edge.id, edge.source, edge.target, edge.label or ""]
            row.extend(edge.properties.get(key, "") for key in edge_props)
            writer.writerow(row)

    return nodes_path, edges_path


def load_csv(prefix: str | Path, name: str = "G") -> PropertyGraph:
    """Read a graph previously written by :func:`save_csv`."""
    prefix = Path(prefix)
    nodes_path = prefix.with_name(prefix.name + "_nodes.csv")
    edges_path = prefix.with_name(prefix.name + "_edges.csv")
    if not nodes_path.exists() or not edges_path.exists():
        raise GraphError(f"missing CSV files for prefix {prefix}")

    graph = PropertyGraph(name=name)
    with open(nodes_path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            properties = {
                key: value
                for key, value in row.items()
                if key not in _RESERVED_NODE_FIELDS and value != ""
            }
            try:
                graph.add_node(row["id"], row["label"] or None, properties)
            except (KeyError, TypeError) as exc:
                raise GraphError(
                    f"malformed node row in {nodes_path} (line {reader.line_num}): "
                    f"missing column {exc}"
                ) from exc
    with open(edges_path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            properties = {
                key: value
                for key, value in row.items()
                if key not in _RESERVED_EDGE_FIELDS and value != ""
            }
            try:
                graph.add_edge(
                    row["id"], row["source"], row["target"], row["label"] or None, properties
                )
            except (KeyError, TypeError) as exc:
                raise GraphError(
                    f"malformed edge row in {edges_path} (line {reader.line_num}): "
                    f"missing column {exc}"
                ) from exc
    return graph
