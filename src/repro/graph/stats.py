"""Descriptive statistics over property graphs.

The optimizer's cost model and the benchmark harness both need cheap summary
statistics: label cardinalities, degree distributions, and cycle detection
(which determines whether a bare WALK recursion terminates).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.model import PropertyGraph

__all__ = ["GraphStatistics", "compute_statistics", "has_directed_cycle", "label_selectivity"]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a property graph."""

    num_nodes: int
    num_edges: int
    node_label_counts: dict[str, int] = field(default_factory=dict)
    edge_label_counts: dict[str, int] = field(default_factory=dict)
    max_out_degree: int = 0
    max_in_degree: int = 0
    avg_out_degree: float = 0.0
    has_cycle: bool = False

    def edge_label_fraction(self, label: str) -> float:
        """Return the fraction of edges carrying ``label`` (0.0 if unused or empty)."""
        if self.num_edges == 0:
            return 0.0
        return self.edge_label_counts.get(label, 0) / self.num_edges

    def node_label_fraction(self, label: str) -> float:
        """Return the fraction of nodes carrying ``label`` (0.0 if unused or empty)."""
        if self.num_nodes == 0:
            return 0.0
        return self.node_label_counts.get(label, 0) / self.num_nodes


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in a single pass."""
    node_labels: Counter[str] = Counter()
    edge_labels: Counter[str] = Counter()
    for node in graph.iter_nodes():
        if node.label is not None:
            node_labels[node.label] += 1
    for edge in graph.iter_edges():
        if edge.label is not None:
            edge_labels[edge.label] += 1

    out_degrees = [graph.out_degree(nid) for nid in graph.node_ids()]
    in_degrees = [graph.in_degree(nid) for nid in graph.node_ids()]
    num_nodes = graph.num_nodes()
    return GraphStatistics(
        num_nodes=num_nodes,
        num_edges=graph.num_edges(),
        node_label_counts=dict(node_labels),
        edge_label_counts=dict(edge_labels),
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        avg_out_degree=(sum(out_degrees) / num_nodes) if num_nodes else 0.0,
        has_cycle=has_directed_cycle(graph),
    )


def has_directed_cycle(graph: PropertyGraph, edge_label: str | None = None) -> bool:
    """Return ``True`` if the graph (restricted to ``edge_label`` if given) has a directed cycle.

    Uses an iterative three-color depth-first search so large graphs do not hit
    Python's recursion limit.
    """
    white, gray, black = 0, 1, 2
    color: dict[str, int] = {nid: white for nid in graph.node_ids()}

    def outgoing(node_id: str) -> list[str]:
        return [
            edge.target
            for edge in graph.out_edges(node_id)
            if edge_label is None or edge.label == edge_label
        ]

    for start in graph.node_ids():
        if color[start] != white:
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        color[start] = gray
        children: dict[str, list[str]] = {start: outgoing(start)}
        while stack:
            node, index = stack[-1]
            succ = children[node]
            if index < len(succ):
                stack[-1] = (node, index + 1)
                nxt = succ[index]
                if color[nxt] == gray:
                    return True
                if color[nxt] == white:
                    color[nxt] = gray
                    children[nxt] = outgoing(nxt)
                    stack.append((nxt, 0))
            else:
                color[node] = black
                stack.pop()
    return False


def label_selectivity(graph: PropertyGraph, label: str) -> float:
    """Return the selectivity of an edge-label predicate, used by the cost model."""
    return compute_statistics(graph).edge_label_fraction(label)
