"""Columnar frozen graph core: CSR adjacency over interned int ids.

:class:`~repro.graph.model.PropertyGraph` is the mutable build-time facade —
dicts of immutable :class:`~repro.graph.model.Node` / ``Edge`` objects with
per-node adjacency id-lists.  That layout is ideal for appends and snapshot
isolation but pays dict probes, string hashing and attribute chasing on every
hop of a closure.  :class:`CompactGraph` is the read-optimized twin: a frozen,
version-pinned columnar encoding where

* nodes and edges are dense int indexes (``0..n-1`` in insertion order),
* adjacency is CSR — ``array('q')`` offset/target/edge arrays for both
  directions, so expansion is a contiguous slice instead of a dict probe
  followed by per-edge object hops,
* labels and property keys are interned into small tables (per-object columns
  hold int codes, not string references),
* per-label edge partitions are contiguous ``array('q')`` runs, so
  label-restricted expansion never touches non-matching edges.

Everything is stdlib ``array`` — numpy is optional for consumers that want
zero-copy views (``memoryview(graph.out_targets)``) but never required.

A ``CompactGraph`` duck-types the *read* API of ``PropertyGraph`` /
``GraphSnapshot`` (``node()``, ``out_edges()``, ``nodes_by_label()``, …), so
every existing consumer works unchanged; mutators raise
:class:`~repro.errors.FrozenGraphError`.  Node/edge objects are materialized
lazily and memoized — the hot paths (closures, join indexes) never touch them,
operating purely on the int encoding via :mod:`repro.paths.intpath` and
:mod:`repro.semantics.int_closure`.

Pickling ships only the flat columns (object memos are dropped), which is what
makes ``spawn``-mode process workers cheap: the wire payload is a handful of
arrays instead of a web of dataclass instances.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Mapping

from repro.errors import FrozenGraphError, UnknownObjectError
from repro.graph.model import Edge, Node, materialize
from repro.paths.path import Path

__all__ = ["CompactGraph", "compact_core_of", "AutoCompactPolicy"]

# Property columns store interned (key_code, value) pair tuples; empty
# property maps share this singleton.
_NO_PROPS: tuple = ()


def compact_core_of(graph) -> "CompactGraph | None":
    """Return the compact core behind ``graph`` if one is current, else ``None``.

    This is the engine's detection hook: executors and closure strategies call
    it on whatever graph-like object a query is pinned to (a live
    ``PropertyGraph``, a ``GraphSnapshot`` view, or a ``CompactGraph`` itself)
    and switch to the int-encoded fast path only when it returns a core whose
    version matches the view.  Mutable graphs without a current core fall back
    to the object path — behaviour, not just results, is identical by
    construction.
    """
    probe = getattr(graph, "compact_core", None)
    if probe is None:
        return None
    return probe()


class AutoCompactPolicy:
    """Freeze-on-read heuristic for the read-mostly serving paths.

    ``Database`` and ``QueryService`` call :meth:`observe` on every read
    (session open, snapshot pin, query submit).  The columnar core is built on
    the **second consecutive read observing the same graph version** — two
    reads with no interleaved write is the "no writer active" signal — so a
    write-heavy phase never pays an O(V+E) rebuild per mutation, while a
    quiescent graph is compacted after exactly one probe read.  A mutation
    transparently *thaws*: the graph drops its core and the probe restarts.

    Races are benign: the worst interleaving builds the core twice or delays
    it by one read, never produces a stale core (``ensure_compact`` checks
    the version under the graph lock).
    """

    __slots__ = ("_probe",)

    def __init__(self) -> None:
        self._probe = -1

    def observe(self, graph) -> None:
        """Note one read of ``graph``; compact it if it looks quiescent."""
        probe = getattr(graph, "compact_core", None)
        ensure = getattr(graph, "ensure_compact", None)
        if probe is None or ensure is None:
            return
        if probe() is not None:
            return
        version = graph.version
        if self._probe == version:
            ensure()
        else:
            self._probe = version


class CompactGraph:
    """Frozen columnar property graph with CSR adjacency and interned tables.

    Build one with :meth:`from_graph` (or via ``PropertyGraph.freeze()`` /
    ``ensure_compact()``).  The instance is immutable and version-pinned:
    ``version`` records the source graph's mutation counter at build time, and
    the engine only trusts a core whose version still matches the live graph.
    """

    __slots__ = (
        "name",
        "_version",
        # identity columns
        "_node_ids",
        "_edge_ids",
        "_node_index",
        "_edge_index",
        # interned tables: code 0 is reserved for "no label"
        "_labels",
        "_label_codes",
        "_prop_keys",
        "_prop_key_codes",
        # per-object columns
        "_node_labels",
        "_edge_labels",
        "_node_props",
        "_edge_props",
        "_edge_src",
        "_edge_dst",
        # CSR adjacency (out and in)
        "_out_offsets",
        "_out_edges",
        "_out_targets",
        "_in_offsets",
        "_in_edges",
        "_in_sources",
        # per-label partitions (label code -> contiguous array('q') of indexes)
        "_nodes_by_label_part",
        "_edges_by_label_part",
        "_label_out_part",
        # lazy object memos (never pickled)
        "_node_objs",
        "_edge_objs",
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __init__(self) -> None:
        self.name = "G"
        self._version = 0
        self._node_ids: list[str] = []
        self._edge_ids: list[str] = []
        self._node_index: dict[str, int] = {}
        self._edge_index: dict[str, int] = {}
        self._labels: list[str | None] = [None]
        self._label_codes: dict[str | None, int] = {None: 0}
        self._prop_keys: list[str] = []
        self._prop_key_codes: dict[str, int] = {}
        self._node_labels = array("i")
        self._edge_labels = array("i")
        self._node_props: list[tuple] = []
        self._edge_props: list[tuple] = []
        self._edge_src = array("q")
        self._edge_dst = array("q")
        self._out_offsets = array("q", [0])
        self._out_edges = array("q")
        self._out_targets = array("q")
        self._in_offsets = array("q", [0])
        self._in_edges = array("q")
        self._in_sources = array("q")
        self._nodes_by_label_part: dict[int, array] = {}
        self._edges_by_label_part: dict[int, array] = {}
        self._label_out_part: dict[int, tuple[array, array, dict[int, int]]] = {}
        self._node_objs: list[Node | None] | None = None
        self._edge_objs: list[Edge | None] | None = None

    @classmethod
    def from_graph(cls, source) -> "CompactGraph":
        """Compile ``source`` (anything with ``iter_nodes``/``iter_edges``) down
        to the columnar form.

        Iteration order is the source's insertion order, so every list-valued
        read (``edges()``, ``out_edges()``, ``nodes_by_label()``) decodes to
        exactly what the source would have returned — the byte-identical
        guarantee starts here.
        """
        compact = cls()
        compact.name = getattr(source, "name", "G")
        compact._version = getattr(source, "version", 0)
        intern_label = compact._intern_label
        intern_props = compact._intern_props

        node_index = compact._node_index
        node_ids = compact._node_ids
        for node in source.iter_nodes():
            node_index[node.id] = len(node_ids)
            node_ids.append(node.id)
            compact._node_labels.append(intern_label(node.label))
            compact._node_props.append(intern_props(node.properties))

        edge_index = compact._edge_index
        edge_ids = compact._edge_ids
        edge_src = compact._edge_src
        edge_dst = compact._edge_dst
        for edge in source.iter_edges():
            edge_index[edge.id] = len(edge_ids)
            edge_ids.append(edge.id)
            edge_src.append(node_index[edge.source])
            edge_dst.append(node_index[edge.target])
            compact._edge_labels.append(intern_label(edge.label))
            compact._edge_props.append(intern_props(edge.properties))

        compact._build_csr()
        compact._build_label_partitions()
        return compact

    def _intern_label(self, label: str | None) -> int:
        code = self._label_codes.get(label)
        if code is None:
            code = len(self._labels)
            self._label_codes[label] = code
            self._labels.append(label)
        return code

    def _intern_props(self, properties: Mapping[str, Any]) -> tuple:
        if not properties:
            return _NO_PROPS
        codes = self._prop_key_codes
        keys = self._prop_keys
        pairs = []
        for key, value in properties.items():
            code = codes.get(key)
            if code is None:
                code = len(keys)
                codes[key] = code
                keys.append(key)
            pairs.append((code, value))
        return tuple(pairs)

    def _build_csr(self) -> None:
        n = len(self._node_ids)
        m = len(self._edge_ids)
        src = self._edge_src
        dst = self._edge_dst

        out_counts = [0] * (n + 1)
        in_counts = [0] * (n + 1)
        for e in range(m):
            out_counts[src[e] + 1] += 1
            in_counts[dst[e] + 1] += 1
        for i in range(1, n + 1):
            out_counts[i] += out_counts[i - 1]
            in_counts[i] += in_counts[i - 1]
        self._out_offsets = array("q", out_counts)
        self._in_offsets = array("q", in_counts)

        out_edges = array("q", bytes(8 * m))
        out_targets = array("q", bytes(8 * m))
        in_edges = array("q", bytes(8 * m))
        in_sources = array("q", bytes(8 * m))
        # Scanning edges in insertion order and filling each node's CSR run
        # left-to-right preserves the per-node adjacency order the mutable
        # graph's append-only id-lists would produce.
        out_fill = list(out_counts[:n]) or [0]
        in_fill = list(in_counts[:n]) or [0]
        for e in range(m):
            s = src[e]
            slot = out_fill[s]
            out_edges[slot] = e
            out_targets[slot] = dst[e]
            out_fill[s] = slot + 1
            t = dst[e]
            slot = in_fill[t]
            in_edges[slot] = e
            in_sources[slot] = src[e]
            in_fill[t] = slot + 1
        self._out_edges = out_edges
        self._out_targets = out_targets
        self._in_edges = in_edges
        self._in_sources = in_sources

    def _build_label_partitions(self) -> None:
        nodes_part: dict[int, array] = {}
        for i, code in enumerate(self._node_labels):
            if code:
                part = nodes_part.get(code)
                if part is None:
                    part = nodes_part[code] = array("q")
                part.append(i)
        self._nodes_by_label_part = nodes_part

        edges_part: dict[int, array] = {}
        for e, code in enumerate(self._edge_labels):
            if code:
                part = edges_part.get(code)
                if part is None:
                    part = edges_part[code] = array("q")
                part.append(e)
        self._edges_by_label_part = edges_part

        # Per-(label, source) contiguous runs: partition each label's edges by
        # source (stable, preserving insertion order within a source), so
        # label-restricted expansion is a slice of two flat arrays.
        label_out: dict[int, tuple[array, array, dict[int, int]]] = {}
        src = self._edge_src
        dst = self._edge_dst
        for code, part in edges_part.items():
            by_src: dict[int, list[int]] = {}
            for e in part:
                by_src.setdefault(src[e], []).append(e)
            flat_edges = array("q")
            flat_targets = array("q")
            bounds: dict[int, int] = {}
            for s, run in by_src.items():
                start = len(flat_edges)
                for e in run:
                    flat_edges.append(e)
                    flat_targets.append(dst[e])
                bounds[s] = (start << 32) | len(run)
            label_out[code] = (flat_edges, flat_targets, bounds)
        self._label_out_part = label_out

    # ------------------------------------------------------------------
    # Int-indexed accessors (the engine's hot path)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The source graph's mutation counter at build time."""
        return self._version

    @property
    def frozen(self) -> bool:
        return True

    def compact_core(self) -> "CompactGraph":
        """A compact graph is its own core (see :func:`compact_core_of`)."""
        return self

    def node_count(self) -> int:
        return len(self._node_ids)

    def edge_count(self) -> int:
        return len(self._edge_ids)

    def node_index_of(self, node_id: str) -> int:
        """Dense index of ``node_id`` (raises ``KeyError`` if unknown)."""
        return self._node_index[node_id]

    def edge_index_of(self, edge_id: str) -> int:
        """Dense index of ``edge_id`` (raises ``KeyError`` if unknown)."""
        return self._edge_index[edge_id]

    def node_id_at(self, index: int) -> str:
        return self._node_ids[index]

    def edge_id_at(self, index: int) -> str:
        return self._edge_ids[index]

    def edge_endpoints_at(self, index: int) -> tuple[int, int]:
        """``(source_index, target_index)`` of edge ``index``."""
        return self._edge_src[index], self._edge_dst[index]

    def out_slice(self, node_index: int) -> tuple[array, array, int, int]:
        """``(edge_indexes, target_indexes, start, end)`` — the CSR run of
        ``node_index``'s outgoing edges.  Zero-copy: callers slice or scan
        ``[start:end]`` of the two shared arrays."""
        offsets = self._out_offsets
        return self._out_edges, self._out_targets, offsets[node_index], offsets[node_index + 1]

    def in_slice(self, node_index: int) -> tuple[array, array, int, int]:
        """CSR run of incoming edges: ``(edge_indexes, source_indexes, start, end)``."""
        offsets = self._in_offsets
        return self._in_edges, self._in_sources, offsets[node_index], offsets[node_index + 1]

    def label_out_slice(self, label: str, node_index: int) -> tuple[array, array, int, int]:
        """Contiguous run of ``node_index``'s outgoing edges labelled ``label``.

        This is the per-label partition payoff: no per-edge label probe, just
        a slice of a flat array (empty when the node has no such edges).
        """
        code = self._label_codes.get(label)
        part = self._label_out_part.get(code) if code else None
        if part is None:
            return self._out_edges, self._out_targets, 0, 0
        flat_edges, flat_targets, bounds = part
        packed = bounds.get(node_index)
        if packed is None:
            return flat_edges, flat_targets, 0, 0
        start = packed >> 32
        return flat_edges, flat_targets, start, start + (packed & 0xFFFFFFFF)

    def node_label_code(self, index: int) -> int:
        return self._node_labels[index]

    def edge_label_code(self, index: int) -> int:
        return self._edge_labels[index]

    def label_for_code(self, code: int) -> str | None:
        return self._labels[code]

    # ------------------------------------------------------------------
    # Object materialization (lazy, memoized — result decode only)
    # ------------------------------------------------------------------
    def _props_dict(self, pairs: tuple) -> dict[str, Any]:
        keys = self._prop_keys
        return {keys[code]: value for code, value in pairs}

    def _node_obj(self, index: int) -> Node:
        objs = self._node_objs
        if objs is None:
            objs = self._node_objs = [None] * len(self._node_ids)
        node = objs[index]
        if node is None:
            node = Node(
                id=self._node_ids[index],
                label=self._labels[self._node_labels[index]],
                properties=self._props_dict(self._node_props[index]),
            )
            objs[index] = node
        return node

    def _edge_obj(self, index: int) -> Edge:
        objs = self._edge_objs
        if objs is None:
            objs = self._edge_objs = [None] * len(self._edge_ids)
        edge = objs[index]
        if edge is None:
            edge = Edge(
                id=self._edge_ids[index],
                source=self._node_ids[self._edge_src[index]],
                target=self._node_ids[self._edge_dst[index]],
                label=self._labels[self._edge_labels[index]],
                properties=self._props_dict(self._edge_props[index]),
            )
            objs[index] = edge
        return edge

    # ------------------------------------------------------------------
    # PropertyGraph read API (duck-typed)
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return self._node_obj(index)

    def edge(self, edge_id: str) -> Edge:
        index = self._edge_index.get(edge_id)
        if index is None:
            raise UnknownObjectError(f"unknown edge: {edge_id!r}")
        return self._edge_obj(index)

    def has_node(self, node_id: str) -> bool:
        return node_id in self._node_index

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edge_index

    def object(self, object_id: str) -> Node | Edge:
        index = self._node_index.get(object_id)
        if index is not None:
            return self._node_obj(index)
        index = self._edge_index.get(object_id)
        if index is not None:
            return self._edge_obj(index)
        raise UnknownObjectError(f"unknown object: {object_id!r}")

    def label_of(self, object_id: str) -> str | None:
        index = self._node_index.get(object_id)
        if index is not None:
            return self._labels[self._node_labels[index]]
        index = self._edge_index.get(object_id)
        if index is not None:
            return self._labels[self._edge_labels[index]]
        raise UnknownObjectError(f"unknown object: {object_id!r}")

    def property_of(self, object_id: str, name: str, default: Any = None) -> Any:
        code = self._prop_key_codes.get(name)
        index = self._node_index.get(object_id)
        if index is not None:
            pairs = self._node_props[index]
        else:
            index = self._edge_index.get(object_id)
            if index is None:
                raise UnknownObjectError(f"unknown object: {object_id!r}")
            pairs = self._edge_props[index]
        if code is not None:
            for pair_code, value in pairs:
                if pair_code == code:
                    return value
        return default

    def nodes(self) -> list[Node]:
        return [self._node_obj(i) for i in range(len(self._node_ids))]

    def edges(self) -> list[Edge]:
        return [self._edge_obj(e) for e in range(len(self._edge_ids))]

    def node_ids(self) -> list[str]:
        return list(self._node_ids)

    def edge_ids(self) -> list[str]:
        return list(self._edge_ids)

    def iter_nodes(self) -> Iterator[Node]:
        for i in range(len(self._node_ids)):
            yield self._node_obj(i)

    def iter_edges(self) -> Iterator[Edge]:
        for e in range(len(self._edge_ids)):
            yield self._edge_obj(e)

    def out_edges(self, node_id: str) -> list[Edge]:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        edges, _, start, end = self.out_slice(index)
        return [self._edge_obj(edges[i]) for i in range(start, end)]

    def in_edges(self, node_id: str) -> list[Edge]:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        edges, _, start, end = self.in_slice(index)
        return [self._edge_obj(edges[i]) for i in range(start, end)]

    def out_degree(self, node_id: str) -> int:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return self._out_offsets[index + 1] - self._out_offsets[index]

    def in_degree(self, node_id: str) -> int:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return self._in_offsets[index + 1] - self._in_offsets[index]

    def neighbors(self, node_id: str) -> list[str]:
        index = self._node_index.get(node_id)
        if index is None:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        _, targets, start, end = self.out_slice(index)
        ids = self._node_ids
        return [ids[targets[i]] for i in range(start, end)]

    def nodes_by_label(self, label: str) -> list[Node]:
        code = self._label_codes.get(label)
        part = self._nodes_by_label_part.get(code) if code else None
        if part is None:
            return []
        return [self._node_obj(i) for i in part]

    def edges_by_label(self, label: str) -> list[Edge]:
        code = self._label_codes.get(label)
        part = self._edges_by_label_part.get(code) if code else None
        if part is None:
            return []
        return [self._edge_obj(e) for e in part]

    def node_labels(self) -> set[str]:
        labels = self._labels
        return {labels[code] for code in self._nodes_by_label_part}

    def edge_labels(self) -> set[str]:
        labels = self._labels
        return {labels[code] for code in self._edges_by_label_part}

    def num_nodes(self) -> int:
        return len(self._node_ids)

    def num_edges(self) -> int:
        return len(self._edge_ids)

    def order(self) -> int:
        return len(self._node_ids)

    def size(self) -> int:
        return len(self._edge_ids)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._node_index or object_id in self._edge_index

    def __len__(self) -> int:
        return len(self._node_ids) + len(self._edge_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompactGraph(name={self.name!r}, nodes={self.num_nodes()}, "
            f"edges={self.num_edges()}, version={self._version})"
        )

    # ------------------------------------------------------------------
    # Atom fast paths (used by PathSet.nodes_of / edges_of and the scans)
    # ------------------------------------------------------------------
    def iter_node_paths(self, graph=None) -> Iterator[Path]:
        """Yield ``Nodes(G)`` as length-zero paths bound to ``graph`` without
        materializing :class:`Node` objects (same content and order as
        ``Path.from_node`` over ``node_ids()``)."""
        target = self if graph is None else graph
        unchecked = Path._unchecked
        for node_id in self._node_ids:
            yield unchecked(target, (node_id,), ())

    def iter_edge_paths(self, graph=None) -> Iterator[Path]:
        """Yield ``Edges(G)`` as length-one paths straight off the endpoint
        columns (same content and order as ``Path.from_edge`` over
        ``edge_ids()``, no :class:`Edge` materialization)."""
        target = self if graph is None else graph
        unchecked = Path._unchecked
        node_ids = self._node_ids
        src = self._edge_src
        dst = self._edge_dst
        for e, edge_id in enumerate(self._edge_ids):
            yield unchecked(target, (node_ids[src[e]], node_ids[dst[e]]), (edge_id,))

    # ------------------------------------------------------------------
    # Snapshot / freeze protocol (already frozen; everything is a no-op)
    # ------------------------------------------------------------------
    def freeze(self) -> "CompactGraph":
        return self

    def snapshot(self) -> "CompactGraph":
        """A compact graph is immutable; it is its own snapshot."""
        return self

    def ensure_compact(self) -> "CompactGraph":
        return self

    def delta_between(self, from_version: int, to_version: int | None = None):
        """Delta protocol for cache revalidation: nothing ever changes."""
        from repro.graph.delta import GraphDelta

        if to_version is None:
            to_version = self._version
        return GraphDelta(from_version=from_version, to_version=to_version)

    # ------------------------------------------------------------------
    # Mutation API (always refused)
    # ------------------------------------------------------------------
    def _refuse(self) -> None:
        raise FrozenGraphError(
            f"CompactGraph {self.name!r} is immutable; mutate the source "
            "PropertyGraph (which thaws its compact core) and re-freeze"
        )

    def add_node(self, *args, **kwargs) -> None:
        self._refuse()

    def add_edge(self, *args, **kwargs) -> None:
        self._refuse()

    def set_node_property(self, *args, **kwargs) -> None:
        self._refuse()

    def set_edge_property(self, *args, **kwargs) -> None:
        self._refuse()

    # ------------------------------------------------------------------
    # Conversion helpers
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None):
        """Materialize back into a fresh, mutable :class:`PropertyGraph`."""
        return materialize(self, name or self.name)

    def subgraph_by_edge_labels(self, labels, name: str | None = None):
        wanted = set(labels)
        return materialize(
            self, name or f"{self.name}[{','.join(sorted(wanted))}]", edge_labels=wanted
        )

    # ------------------------------------------------------------------
    # Pickling: flat arrays only (object memos are rebuilt lazily)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_node_objs", "_edge_objs")
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._node_objs = None
        self._edge_objs = None

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def memory_report(self) -> dict[str, int]:
        """Approximate resident bytes of each column family (via ``getsizeof``).

        Used by PERFORMANCE.md's bytes-per-node/edge table and the CI
        memory-footprint smoke: the columnar core must stay well below the
        dict-of-objects representation it replaces.  Property *values* are
        shared with the source graph and excluded (both representations hold
        the same references); the id strings are counted because the compact
        form owns its only copy of each.
        """
        from sys import getsizeof

        def sizeof_strings(strings) -> int:
            return getsizeof(strings) + sum(getsizeof(s) for s in strings)

        def sizeof_arrays(arrays) -> int:
            return sum(getsizeof(a) for a in arrays)

        def sizeof_index(index: dict) -> int:
            # Keys are the same string objects as the id lists — count the
            # dict shell only.
            return getsizeof(index)

        report = {
            "ids": sizeof_strings(self._node_ids) + sizeof_strings(self._edge_ids),
            "indexes": sizeof_index(self._node_index) + sizeof_index(self._edge_index),
            "tables": sizeof_strings([s for s in self._labels if s is not None])
            + sizeof_strings(self._prop_keys)
            + getsizeof(self._label_codes)
            + getsizeof(self._prop_key_codes),
            "columns": sizeof_arrays(
                (self._node_labels, self._edge_labels, self._edge_src, self._edge_dst)
            )
            + getsizeof(self._node_props)
            + getsizeof(self._edge_props)
            + sum(getsizeof(p) for p in self._node_props if p)
            + sum(getsizeof(p) for p in self._edge_props if p),
            "csr": sizeof_arrays(
                (
                    self._out_offsets,
                    self._out_edges,
                    self._out_targets,
                    self._in_offsets,
                    self._in_edges,
                    self._in_sources,
                )
            ),
            "partitions": sum(
                sizeof_arrays((part,)) for part in self._nodes_by_label_part.values()
            )
            + sum(sizeof_arrays((part,)) for part in self._edges_by_label_part.values())
            + sum(
                sizeof_arrays((edges, targets)) + getsizeof(bounds)
                for edges, targets, bounds in self._label_out_part.values()
            ),
        }
        report["total"] = sum(report.values())
        report["bytes_per_object"] = report["total"] // max(
            1, len(self._node_ids) + len(self._edge_ids)
        )
        return report
