"""Write-ahead logging and crash-consistent recovery for property graphs.

The in-memory :class:`~repro.graph.model.PropertyGraph` evaporates on process
exit.  This module makes it durable with the classical two-file scheme used
by every storage engine since ARIES:

* ``snapshot.json`` — a full :mod:`repro.graph.io` JSON image of the graph at
  some version (written atomically via temp-file + rename);
* ``wal.log`` — an append-only log of every mutation committed *after* that
  snapshot, keyed by the graph's version counter.

Record framing is ``>II`` (big-endian payload length + CRC32 of the payload)
followed by a compact JSON payload ``{"op", "v", "a"}``.  The length prefix
lets the reader skip ahead without parsing; the checksum distinguishes a torn
write from silent corruption:

* a truncated or checksum-failing **final** record is the expected signature
  of a crash mid-append — recovery drops it and truncates the log;
* the same damage anywhere **earlier** means the log was corrupted after it
  was written, and recovery refuses to guess: :class:`WalCorruptError`.

Write-ahead semantics come from the graph's pre-commit listener hook
(:meth:`PropertyGraph.add_write_listener`): the WAL appends (and optionally
fsyncs) the record *before* the mutation is applied, so a mutation that could
not be logged never happens in memory either.  Conversely a record that was
durably logged may be replayed on recovery even if the crash struck before
the in-memory apply — recovery always yields a *prefix* of the committed
mutation sequence, never a gap.

Fault injection is built in rather than bolted on: every dangerous window in
the writer and in rotation calls a :class:`CrashPoint` hook that tests use to
raise :class:`SimulatedCrash` mid-operation.  The recovery property suite in
``tests/test_durability.py`` drives random crash points over a corpus of
graphs and asserts byte-identical query results after recovery.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import GraphError, WalCorruptError
from repro.graph.io import graph_to_dict, load_json
from repro.graph.model import PropertyGraph

__all__ = [
    "CrashPoint",
    "SimulatedCrash",
    "WriteAheadLog",
    "DurableStore",
    "WalScan",
    "read_wal",
    "apply_op",
]

_HEADER = struct.Struct(">II")

#: fsync policies accepted by :class:`WriteAheadLog`.
FSYNC_POLICIES = ("always", "batch", "off")


class SimulatedCrash(BaseException):
    """Raised by a fault-injection hook to abort an operation mid-flight.

    Derives from :class:`BaseException` so production code that defensively
    catches ``Exception`` cannot accidentally swallow an injected crash —
    exactly like a real ``SIGKILL`` would not be catchable.
    """


class CrashPoint:
    """Named windows where a crash-injection hook is invoked.

    A hook is any ``Callable[[str], None]``; it receives one of these names
    and may raise :class:`SimulatedCrash` to simulate power loss at that
    instant.  Bytes already written before the hook fires remain in the file
    (that is the point: they model what survived on disk).
    """

    #: Before any byte of the record is written — the mutation aborts cleanly.
    BEFORE_APPEND = "wal.before-append"
    #: After the header and half the payload — leaves a torn tail on disk.
    MID_APPEND = "wal.mid-append"
    #: Record fully written to the OS but not yet fsynced.
    AFTER_APPEND = "wal.after-append"
    #: After the fsync for this record returned (the record is durable).
    AFTER_SYNC = "wal.after-sync"
    #: Rotation: before anything was written.
    ROTATE_BEGIN = "rotate.begin"
    #: Rotation: snapshot temp file written + fsynced, not yet renamed.
    ROTATE_SNAPSHOT_TMP = "rotate.snapshot-tmp"
    #: Rotation: snapshot renamed into place, old (stale) WAL still on disk.
    ROTATE_SNAPSHOT_RENAMED = "rotate.snapshot-renamed"
    #: Rotation: complete (fresh empty WAL in place).
    ROTATE_DONE = "rotate.done"

    ALL = (
        BEFORE_APPEND,
        MID_APPEND,
        AFTER_APPEND,
        AFTER_SYNC,
        ROTATE_BEGIN,
        ROTATE_SNAPSHOT_TMP,
        ROTATE_SNAPSHOT_RENAMED,
        ROTATE_DONE,
    )


def _encode_record(op: dict[str, Any]) -> bytes:
    payload = json.dumps(op, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """Result of decoding a WAL file.

    Attributes:
        records: Every intact op record, in log order.
        valid_bytes: Length of the intact prefix; a torn tail (if any) starts
            here and recovery truncates the file to this offset.
        torn_tail: Whether a truncated/corrupt final record was dropped.
        path: The scanned file.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    torn_tail: bool = False
    path: str = ""

    @property
    def versions(self) -> tuple[int, int] | None:
        """``(first, last)`` version covered by the records, or ``None`` if empty."""
        if not self.records:
            return None
        return (self.records[0]["v"], self.records[-1]["v"])


def read_wal(path: str | Path) -> WalScan:
    """Decode the WAL at ``path``, dropping a torn tail, rejecting corruption.

    Raises:
        WalCorruptError: if a non-final record is truncated, fails its
            checksum, or does not decode to a valid op payload.
    """
    path = Path(path)
    data = path.read_bytes()
    scan = WalScan(path=str(path))
    offset = 0
    total = len(data)
    while offset < total:
        final = False
        if offset + _HEADER.size > total:
            final = True  # partial header can only be a torn final record
        else:
            length, checksum = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + length
            if end > total:
                final = True  # payload runs past EOF: torn final record
            else:
                payload = data[offset + _HEADER.size : end]
                if zlib.crc32(payload) != checksum:
                    if end == total:
                        final = True  # torn tail: partially persisted write
                    else:
                        raise WalCorruptError(
                            "checksum mismatch on non-final record",
                            path=str(path),
                            offset=offset,
                        )
                else:
                    try:
                        op = json.loads(payload.decode("utf-8"))
                        if not isinstance(op, dict) or "op" not in op or "v" not in op:
                            raise ValueError("not an op record")
                    except (ValueError, UnicodeDecodeError) as exc:
                        # The checksum passed, so these bytes were written
                        # intact — this is corruption, not a torn write.
                        raise WalCorruptError(
                            f"undecodable record ({exc})", path=str(path), offset=offset
                        ) from exc
                    scan.records.append(op)
                    offset = end
        if final:
            scan.torn_tail = True
            break
    scan.valid_bytes = offset
    return scan


def apply_op(graph: PropertyGraph, op: dict[str, Any]) -> None:
    """Apply one logged op record to ``graph`` (the replay half of the WAL)."""
    kind = op.get("op")
    args = op.get("a") or {}
    if kind == "add_node":
        graph.add_node(args["id"], args.get("label"), args.get("properties") or {})
    elif kind == "add_edge":
        graph.add_edge(
            args["id"],
            args["source"],
            args["target"],
            args.get("label"),
            args.get("properties") or {},
        )
    elif kind == "set_node_property":
        graph.set_node_property(args["id"], args["name"], args["value"])
    elif kind == "set_edge_property":
        graph.set_edge_property(args["id"], args["name"], args["value"])
    else:
        raise WalCorruptError(f"unknown op kind {kind!r}")


class WriteAheadLog:
    """Append-only, checksummed mutation log for one :class:`PropertyGraph`.

    Args:
        path: Log file (created if missing, appended to if present).
        fsync: ``"always"`` fsyncs after every record (survives power loss at
            one syscall per write), ``"batch"`` fsyncs every
            ``batch_interval`` records and on close/rotation (bounded-loss
            window), ``"off"`` never fsyncs (OS-crash loss window — see the
            acceptance test in ``tests/test_wal.py``).
        batch_interval: Records between fsyncs under the ``batch`` policy.
        crash_hook: Fault-injection hook; see :class:`CrashPoint`.

    The instance is a valid write listener: :meth:`attach` registers it on a
    graph so every mutation is logged before it is applied.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "always",
        batch_interval: int = 64,
        crash_hook: Callable[[str], None] | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_interval < 1:
            raise ValueError(f"batch_interval must be >= 1, got {batch_interval}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.batch_interval = batch_interval
        self._crash_hook = crash_hook
        self._lock = threading.Lock()
        self._file = open(self.path, "ab")
        self._unsynced = 0
        self.records_appended = 0
        self.syncs = 0
        self.last_version: int | None = None
        self._graph: PropertyGraph | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _crash(self, point: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(point)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, op: dict[str, Any]) -> None:
        """Log one op record (this is the graph's pre-commit listener).

        Raising (an I/O error or an injected crash) aborts the mutation the
        record describes — write-ahead means "no log, no commit".
        """
        data = _encode_record(op)
        with self._lock:
            if self._closed:
                raise GraphError(f"write-ahead log {self.path} is closed")
            self._crash(CrashPoint.BEFORE_APPEND)
            if self._crash_hook is not None:
                # Split the write so MID_APPEND can leave a torn tail on
                # disk.  Without a hook a single write call is both simpler
                # and closer to atomic.
                mid = _HEADER.size + max(1, (len(data) - _HEADER.size) // 2)
                self._file.write(data[:mid])
                self._file.flush()
                self._crash(CrashPoint.MID_APPEND)
                self._file.write(data[mid:])
            else:
                self._file.write(data)
            self._file.flush()
            self._crash(CrashPoint.AFTER_APPEND)
            self._unsynced += 1
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch" and self._unsynced >= self.batch_interval
            ):
                self._sync_locked()
            self._crash(CrashPoint.AFTER_SYNC)
            self.records_appended += 1
            self.last_version = op["v"]

    def _sync_locked(self) -> None:
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._unsynced = 0

    def sync(self) -> None:
        """Force an fsync regardless of policy (used on close and rotation)."""
        with self._lock:
            if not self._closed and self._unsynced:
                self._sync_locked()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, graph: PropertyGraph) -> None:
        """Register this WAL as ``graph``'s write-ahead listener."""
        self._graph = graph
        graph.add_write_listener(self.append)

    def detach(self) -> None:
        """Unregister from the attached graph (no-op when not attached)."""
        if self._graph is not None:
            self._graph.remove_write_listener(self.append)
            self._graph = None

    def reset(self) -> None:
        """Atomically replace the log with a fresh empty one (post-rotation).

        Crash-safe: the empty file is created under a temp name and renamed
        over the old log, so a crash leaves either the full stale log (whose
        records are all covered by the new snapshot and skipped on replay) or
        the new empty one — never a half-truncated log.
        """
        with self._lock:
            if self._closed:
                raise GraphError(f"write-ahead log {self.path} is closed")
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp, self.path)
            _fsync_directory(self.path.parent)
            self._file = open(self.path, "ab")
            self._unsynced = 0
            self.last_version = None

    def close(self) -> None:
        """Flush, fsync (unless policy is ``off``), and close the log file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
                if self.fsync_policy != "off" and self._unsynced:
                    os.fsync(self._file.fileno())
                    self.syncs += 1
            finally:
                self._file.close()
        self.detach()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog(path={str(self.path)!r}, fsync={self.fsync_policy!r}, "
            f"records={self.records_appended})"
        )


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableStore:
    """A directory-backed durable :class:`PropertyGraph`: snapshot + WAL.

    Opening a store recovers the graph to its exact pre-crash version
    (snapshot, then WAL replay with torn-tail repair) and attaches a
    :class:`WriteAheadLog` so every subsequent mutation is logged before it
    commits.  :meth:`rotate` compacts the log into a fresh snapshot.

    Args:
        directory: Store directory, created if missing.  Layout:
            ``snapshot.json`` + ``wal.log``.
        name: Graph name used when the store is brand new.
        fsync / batch_interval: Forwarded to :class:`WriteAheadLog`.
        crash_hook: Fault-injection hook shared by the WAL writer and
            rotation (see :class:`CrashPoint`).

    Attributes:
        graph: The recovered, live, durably-logged graph.
        wal: The attached write-ahead log.
        recovered_from_snapshot: Whether a snapshot file was found.
        replayed_records: WAL records applied during recovery.
        stale_records: WAL records skipped because the snapshot already
            covered their version (crash between snapshot rename and WAL
            reset).
    """

    SNAPSHOT_NAME = "snapshot.json"
    WAL_NAME = "wal.log"

    def __init__(
        self,
        directory: str | Path,
        *,
        name: str = "G",
        fsync: str = "always",
        batch_interval: int = 64,
        crash_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / self.SNAPSHOT_NAME
        self.wal_path = self.directory / self.WAL_NAME
        self._crash_hook = crash_hook
        self.recovered_from_snapshot = False
        self.replayed_records = 0
        self.stale_records = 0
        self.rotations = 0
        self.graph = self._recover(name)
        self.wal = WriteAheadLog(
            self.wal_path,
            fsync=fsync,
            batch_interval=batch_interval,
            crash_hook=crash_hook,
        )
        self.wal.attach(self.graph)
        self._closed = False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, name: str) -> PropertyGraph:
        if self.snapshot_path.exists():
            graph = load_json(self.snapshot_path)
            self.recovered_from_snapshot = True
        else:
            graph = PropertyGraph(name=name)
        if self.wal_path.exists():
            scan = read_wal(self.wal_path)
            if scan.torn_tail:
                # Repair: drop the torn record so the next append starts a
                # clean frame instead of extending garbage.
                with open(self.wal_path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
            for op in scan.records:
                version = op["v"]
                if version <= graph.version:
                    # Stale log: rotation crashed after the snapshot rename
                    # but before the WAL reset — the snapshot already holds
                    # these mutations.
                    self.stale_records += 1
                    continue
                if version != graph.version + 1:
                    raise WalCorruptError(
                        f"version gap during replay: graph at v{graph.version}, "
                        f"next record is v{version}",
                        path=str(self.wal_path),
                    )
                apply_op(graph, op)
                self.replayed_records += 1
        return graph

    # ------------------------------------------------------------------
    # Rotation (log compaction)
    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Compact the WAL into a fresh snapshot; returns the snapshot version.

        Mutations are blocked for the duration (the graph lock is held).
        Crash-safe at every step: the snapshot lands via temp-file + atomic
        rename, and the WAL is reset the same way, so recovery after a crash
        anywhere inside sees either (old snapshot + full WAL) or (new
        snapshot + stale-but-skippable WAL) or (new snapshot + empty WAL).
        """
        if self._closed:
            raise GraphError(f"durable store {self.directory} is closed")
        with self.graph._lock:
            self._crash(CrashPoint.ROTATE_BEGIN)
            version = self.graph.version
            payload = graph_to_dict(self.graph)
            tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=False)
                handle.flush()
                os.fsync(handle.fileno())
            self._crash(CrashPoint.ROTATE_SNAPSHOT_TMP)
            os.replace(tmp, self.snapshot_path)
            _fsync_directory(self.directory)
            self._crash(CrashPoint.ROTATE_SNAPSHOT_RENAMED)
            self.wal.reset()
            self._crash(CrashPoint.ROTATE_DONE)
            self.rotations += 1
            return version

    def _crash(self, point: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(point)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach and close the WAL; the store can be re-opened to recover."""
        if self._closed:
            return
        self._closed = True
        self.wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableStore(directory={str(self.directory)!r}, "
            f"version={self.graph.version}, wal_records={self.wal.records_appended})"
        )
