"""Graph deltas and query footprints — the vocabulary of incremental cache maintenance.

The serving stack built in PR 3–5 keys every cache entry on the graph's
mutation counter, so *any* write invalidates *every* cached plan and result
("whole-version invalidation").  ``BENCH_service.json`` shows result reuse is
the service's only real throughput win, which makes that blanket invalidation
the single most expensive thing a write can do.  This module defines the two
value objects that replace it:

* :class:`GraphDelta` — what changed between two versions of one graph: the
  node/edge labels touched by insertions, the labels of objects whose
  properties were updated, and the identifiers involved.  Produced by
  :meth:`~repro.graph.model.PropertyGraph.delta_between` from the graph's
  bounded in-memory mutation journal.
* :class:`QueryFootprint` — what part of the graph a query's *result* can
  depend on: the edge/node label classes its scans are restricted to (or a
  universal marker when no sound restriction is known) plus whether it reads
  node/edge property values.  Derived statically from the optimized plan by
  :func:`repro.engine.footprint.plan_footprint` and recorded by both
  executors into :class:`~repro.execution.ExecutionStatistics`.

:meth:`GraphDelta.affects` is the single intersection test the caches use: a
write invalidates a cached entry only when its delta can change the entry's
result.  The analysis is deliberately *conservative* — whenever a restriction
cannot be proven, the footprint degrades to universal and behaves exactly
like whole-version invalidation — so delta-aware maintenance is a pure
optimization, never a correctness trade.

Soundness notes (why each rule is safe):

* A label-restricted edge scan ``σ[label(edge(1)) = ℓ](Edges(G))`` depends
  only on edges labelled ``ℓ``: inserting an edge with any other label (or no
  label — the equality can never match ``None``) leaves its output unchanged.
* Inserting a *node* never changes an edge scan: a brand-new node has no
  incident edges, and connecting it requires a separate edge insertion that
  shows up in the delta on its own.
* Property updates can only affect queries that read property values
  (:class:`~repro.algebra.conditions.PropertyCondition`); path rendering,
  label conditions and the solution-space keys are all property-free.

The module is standard-library only (it sits below both the graph layer and
the engine layer in the import graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GraphDelta", "QueryFootprint", "UNIVERSAL_FOOTPRINT"]

#: Placeholder label for objects added without a label: ``lambda`` is partial,
#: and ``None`` cannot live in a ``frozenset[str]`` documented as labels.
UNLABELED = "\x00unlabeled"


@dataclass(frozen=True)
class QueryFootprint:
    """The part of a graph one query's result can depend on.

    Attributes:
        edge_labels: Edge-label classes the query's edge scans are restricted
            to.  Ignored when ``edge_universal`` is set.  An empty set with
            ``edge_universal=False`` means the plan contains no edge scan at
            all, so no edge insertion can affect it.
        edge_universal: The query may depend on edges of *any* label (an
            unrestricted ``Edges(G)`` scan, or a restriction the analysis
            could not prove).
        node_labels: Same, for node scans (``Nodes(G)`` atoms).
        node_universal: The query may depend on nodes of any label.
        reads_node_properties: The plan evaluates a property condition over a
            node position, so node property updates can change its result.
        reads_edge_properties: Same, for edge property conditions.
    """

    edge_labels: frozenset[str] = frozenset()
    edge_universal: bool = False
    node_labels: frozenset[str] = frozenset()
    node_universal: bool = False
    reads_node_properties: bool = False
    reads_edge_properties: bool = False

    def union(self, other: "QueryFootprint") -> "QueryFootprint":
        """Combine two footprints (a plan depends on everything its subplans do)."""
        return QueryFootprint(
            edge_labels=self.edge_labels | other.edge_labels,
            edge_universal=self.edge_universal or other.edge_universal,
            node_labels=self.node_labels | other.node_labels,
            node_universal=self.node_universal or other.node_universal,
            reads_node_properties=self.reads_node_properties or other.reads_node_properties,
            reads_edge_properties=self.reads_edge_properties or other.reads_edge_properties,
        )

    def describe(self) -> str:
        """Human-readable summary used by EXPLAIN-style introspection."""
        edge = "*" if self.edge_universal else "{%s}" % ",".join(sorted(self.edge_labels))
        node = "*" if self.node_universal else "{%s}" % ",".join(sorted(self.node_labels))
        props = []
        if self.reads_node_properties:
            props.append("node-props")
        if self.reads_edge_properties:
            props.append("edge-props")
        suffix = f" +{'+'.join(props)}" if props else ""
        return f"edges:{edge} nodes:{node}{suffix}"


#: The footprint that intersects every possible delta — the conservative
#: fallback that makes delta-aware maintenance degrade to whole-version
#: invalidation instead of serving a stale result.
UNIVERSAL_FOOTPRINT = QueryFootprint(
    edge_universal=True,
    node_universal=True,
    reads_node_properties=True,
    reads_edge_properties=True,
)


@dataclass(frozen=True)
class GraphDelta:
    """What changed in one graph between two versions.

    Instances are produced by
    :meth:`~repro.graph.model.PropertyGraph.delta_between` from the graph's
    bounded mutation journal; ``from_version < to_version`` always holds and
    the delta covers mutations with ``from_version < version <= to_version``.

    Attributes:
        from_version: Exclusive lower bound of the covered version range.
        to_version: Inclusive upper bound.
        node_labels: Labels of inserted nodes (:data:`UNLABELED` for nodes
            added without a label).
        edge_labels: Labels of inserted edges (same convention).
        node_property_labels: Labels of nodes whose properties were updated.
        edge_property_labels: Labels of edges whose properties were updated.
        node_ids: Identifiers of nodes touched (inserted or property-updated);
            for edge insertions, both endpoint identifiers are included.
        edge_ids: Identifiers of edges touched (inserted or property-updated).
    """

    from_version: int
    to_version: int
    node_labels: frozenset[str] = frozenset()
    edge_labels: frozenset[str] = frozenset()
    node_property_labels: frozenset[str] = frozenset()
    edge_property_labels: frozenset[str] = frozenset()
    node_ids: frozenset[str] = frozenset()
    edge_ids: frozenset[str] = frozenset()

    @property
    def empty(self) -> bool:
        """``True`` when the version range contains no recorded mutation."""
        return not (
            self.node_labels
            or self.edge_labels
            or self.node_property_labels
            or self.edge_property_labels
        )

    def affects(self, footprint: QueryFootprint | None) -> bool:
        """Can this delta change the result of a query with ``footprint``?

        ``None`` (no footprint recorded) is treated as universal: the entry
        is invalidated, which is the pre-delta behavior.
        """
        if footprint is None:
            return not self.empty
        for label in self.edge_labels:
            if footprint.edge_universal:
                return True
            if label != UNLABELED and label in footprint.edge_labels:
                return True
        for label in self.node_labels:
            if footprint.node_universal:
                return True
            if label != UNLABELED and label in footprint.node_labels:
                return True
        if self.node_property_labels and footprint.reads_node_properties:
            return True
        if self.edge_property_labels and footprint.reads_edge_properties:
            return True
        return False

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Union two deltas of adjacent (or overlapping) version ranges."""
        return GraphDelta(
            from_version=min(self.from_version, other.from_version),
            to_version=max(self.to_version, other.to_version),
            node_labels=self.node_labels | other.node_labels,
            edge_labels=self.edge_labels | other.edge_labels,
            node_property_labels=self.node_property_labels | other.node_property_labels,
            edge_property_labels=self.edge_property_labels | other.edge_property_labels,
            node_ids=self.node_ids | other.node_ids,
            edge_ids=self.edge_ids | other.edge_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(v{self.from_version}..v{self.to_version}, "
            f"+nodes={sorted(self.node_labels)}, +edges={sorted(self.edge_labels)}, "
            f"props={sorted(self.node_property_labels | self.edge_property_labels)})"
        )


@dataclass
class _MutationRecord:
    """One journal entry (internal to :class:`PropertyGraph`'s delta tracking)."""

    version: int
    kind: str  # "node" | "edge" | "node-prop" | "edge-prop"
    label: str | None
    object_id: str
    endpoints: tuple[str, str] | None = None


def build_delta(
    records: "list[_MutationRecord]", from_version: int, to_version: int
) -> GraphDelta:
    """Aggregate journal ``records`` into a :class:`GraphDelta`.

    The caller guarantees every record satisfies
    ``from_version < record.version <= to_version``.
    """
    node_labels: set[str] = set()
    edge_labels: set[str] = set()
    node_prop_labels: set[str] = set()
    edge_prop_labels: set[str] = set()
    node_ids: set[str] = set()
    edge_ids: set[str] = set()
    for record in records:
        label = record.label if record.label is not None else UNLABELED
        if record.kind == "node":
            node_labels.add(label)
            node_ids.add(record.object_id)
        elif record.kind == "edge":
            edge_labels.add(label)
            edge_ids.add(record.object_id)
            if record.endpoints is not None:
                node_ids.update(record.endpoints)
        elif record.kind == "node-prop":
            node_prop_labels.add(label)
            node_ids.add(record.object_id)
        else:  # "edge-prop"
            edge_prop_labels.add(label)
            edge_ids.add(record.object_id)
    return GraphDelta(
        from_version=from_version,
        to_version=to_version,
        node_labels=frozenset(node_labels),
        edge_labels=frozenset(edge_labels),
        node_property_labels=frozenset(node_prop_labels),
        edge_property_labels=frozenset(edge_prop_labels),
        node_ids=frozenset(node_ids),
        edge_ids=frozenset(edge_ids),
    )
