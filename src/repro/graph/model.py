"""Property graph data model (paper Definition 2.1).

A property graph is a tuple ``G = (N, E, rho, lambda, nu)`` where ``N`` and
``E`` are disjoint finite sets of node and edge identifiers, ``rho`` maps each
edge to its (source, target) node pair, ``lambda`` partially assigns a single
label to nodes and edges, and ``nu`` partially assigns property/value pairs to
nodes and edges.

The classes in this module are deliberately simple, immutable value objects
plus one mutable container (:class:`PropertyGraph`).  Identifiers are plain
strings; values are arbitrary Python objects (typically strings and numbers).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.errors import (
    DuplicateObjectError,
    FrozenGraphError,
    InvalidEdgeError,
    UnknownObjectError,
)
from repro.graph.delta import GraphDelta, _MutationRecord, build_delta

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.graph.snapshot import GraphSnapshot

__all__ = ["Node", "Edge", "PropertyGraph", "materialize"]

#: Journal entries retained for :meth:`PropertyGraph.delta_between`.  Once a
#: version falls out of this window the method returns ``None`` and callers
#: fall back to whole-version invalidation, so the bound trades memory for
#: how far behind a cache entry may lag and still be revalidated precisely.
JOURNAL_CAPACITY = 4096


@dataclass(frozen=True)
class Node:
    """A node of a property graph.

    Attributes:
        id: The node identifier (unique across nodes *and* edges).
        label: The optional label assigned by ``lambda``; ``None`` if unlabeled.
        properties: The property/value pairs assigned by ``nu``.
    """

    id: str
    label: str | None = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def property(self, name: str, default: Any = None) -> Any:
        """Return the value of property ``name`` or ``default`` if absent."""
        return self.properties.get(name, default)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f":{self.label}" if self.label else ""
        return f"({self.id}{label})"


@dataclass(frozen=True)
class Edge:
    """A directed edge of a property graph.

    Attributes:
        id: The edge identifier (unique across nodes *and* edges).
        source: Identifier of the source node (``rho(e) = (source, target)``).
        target: Identifier of the target node.
        label: The optional label assigned by ``lambda``; ``None`` if unlabeled.
        properties: The property/value pairs assigned by ``nu``.
    """

    id: str
    source: str
    target: str
    label: str | None = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def property(self, name: str, default: Any = None) -> Any:
        """Return the value of property ``name`` or ``default`` if absent."""
        return self.properties.get(name, default)

    def endpoints(self) -> tuple[str, str]:
        """Return ``rho(e)`` as a ``(source, target)`` pair."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f":{self.label}" if self.label else ""
        return f"-[{self.id}{label}]->"


class PropertyGraph:
    """A directed labelled multigraph with properties (Definition 2.1).

    The graph owns its :class:`Node` and :class:`Edge` objects and offers
    index-backed accessors used throughout the algebra evaluator:

    * ``nodes()`` / ``edges()`` — the atom sets ``Nodes(G)`` and ``Edges(G)``;
    * ``out_edges(node_id)`` / ``in_edges(node_id)`` — adjacency lists;
    * ``edges_by_label(label)`` / ``nodes_by_label(label)`` — label indexes.
    """

    def __init__(self, name: str = "G") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}
        self._nodes_by_label: dict[str, list[str]] = {}
        self._edges_by_label: dict[str, list[str]] = {}
        self._version = 0
        # Snapshot support: the graph is append-only, so a snapshot is a
        # version-pinned *view*.  Each object records the version at which it
        # was added; the append-only lists preserve insertion order for
        # iteration (dict iteration is unsafe while another thread inserts,
        # indexed list reads are not).
        self._node_version: dict[str, int] = {}
        self._edge_version: dict[str, int] = {}
        self._node_list: list[Node] = []
        self._edge_list: list[Edge] = []
        self._node_slot: dict[str, int] = {}
        self._edge_slot: dict[str, int] = {}
        self._frozen = False
        self._lock = threading.RLock()
        self._last_snapshot: "GraphSnapshot | None" = None
        # Columnar core: a version-pinned CompactGraph built by freeze() /
        # ensure_compact().  Any mutation drops it ("thaw"); consumers check
        # compact_core() and fall back to the object representation when the
        # cached core is absent or stale.
        self._compact = None
        # Delta tracking: a bounded journal of recent mutations, consumed by
        # delta_between().  _journal_floor is the highest version the journal
        # can no longer describe (records at or below it were trimmed).
        self._journal: deque[_MutationRecord] = deque()
        self._journal_floor = 0
        # Write-ahead listeners: called with the op record *before* a
        # validated mutation is applied; raising aborts the mutation.  This
        # is the WAL's commit hook (write-ahead: log, then apply).
        self._write_listeners: list[Callable[[dict[str, Any]], None]] = []

    @property
    def version(self) -> int:
        """Mutation counter: incremented by every successful mutation
        (``add_node`` / ``add_edge`` / ``set_node_property`` / ``set_edge_property``).

        Consumers that cache anything derived from the graph (the engine's
        plan cache, memoized statistics) key their entries on this counter so
        a mutation invalidates them without any explicit notification.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        """Register a node and return it.

        Raises:
            DuplicateObjectError: if the identifier is already used by a node
                or an edge (``N`` and ``E`` must be disjoint).
            FrozenGraphError: if the graph has been frozen.
        """
        with self._lock:
            if self._frozen:
                raise FrozenGraphError(f"graph {self.name!r} is frozen; mutations are disabled")
            if node_id in self._nodes or node_id in self._edges:
                raise DuplicateObjectError(f"object identifier already in use: {node_id!r}")
            node = Node(id=node_id, label=label, properties=dict(properties or {}))
            self._pre_commit(
                {
                    "op": "add_node",
                    "v": self._version + 1,
                    "a": {"id": node_id, "label": label, "properties": dict(node.properties)},
                }
            )
            # Publish order matters for lock-free snapshot readers: the object
            # and its version must be visible before any index references it.
            self._nodes[node_id] = node
            self._node_version[node_id] = self._version + 1
            self._out.setdefault(node_id, [])
            self._in.setdefault(node_id, [])
            if label is not None:
                self._nodes_by_label.setdefault(label, []).append(node_id)
            self._node_slot[node_id] = len(self._node_list)
            self._node_list.append(node)
            self._version += 1
            self._compact = None
            self._journal_append(
                _MutationRecord(self._version, "node", label, node_id)
            )
            return node

    def add_edge(
        self,
        edge_id: str,
        source: str,
        target: str,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> Edge:
        """Register a directed edge ``source -> target`` and return it.

        Raises:
            DuplicateObjectError: if the identifier is already in use.
            InvalidEdgeError: if either endpoint is not a known node.
            FrozenGraphError: if the graph has been frozen.
        """
        with self._lock:
            if self._frozen:
                raise FrozenGraphError(f"graph {self.name!r} is frozen; mutations are disabled")
            if edge_id in self._nodes or edge_id in self._edges:
                raise DuplicateObjectError(f"object identifier already in use: {edge_id!r}")
            if source not in self._nodes:
                raise InvalidEdgeError(f"unknown source node {source!r} for edge {edge_id!r}")
            if target not in self._nodes:
                raise InvalidEdgeError(f"unknown target node {target!r} for edge {edge_id!r}")
            edge = Edge(
                id=edge_id,
                source=source,
                target=target,
                label=label,
                properties=dict(properties or {}),
            )
            self._pre_commit(
                {
                    "op": "add_edge",
                    "v": self._version + 1,
                    "a": {
                        "id": edge_id,
                        "source": source,
                        "target": target,
                        "label": label,
                        "properties": dict(edge.properties),
                    },
                }
            )
            # Publish the edge and its version before linking it into the
            # adjacency lists, so a lock-free snapshot reader walking an
            # adjacency list never sees an edge id it cannot resolve.
            self._edges[edge_id] = edge
            self._edge_version[edge_id] = self._version + 1
            self._out[source].append(edge_id)
            self._in[target].append(edge_id)
            if label is not None:
                self._edges_by_label.setdefault(label, []).append(edge_id)
            self._edge_slot[edge_id] = len(self._edge_list)
            self._edge_list.append(edge)
            self._version += 1
            self._compact = None
            self._journal_append(
                _MutationRecord(self._version, "edge", label, edge_id, (source, target))
            )
            return edge

    def set_node_property(self, node_id: str, name: str, value: Any) -> Node:
        """Set property ``name`` of node ``node_id`` to ``value`` and return the new node.

        The update replaces the (immutable) :class:`Node` object in place and
        bumps the graph version, so version-keyed consumers observe it.

        .. note:: Snapshot isolation covers object *existence*, not property
           values: a snapshot taken before this call resolves the node id to
           the updated object.  Queries that read properties and need
           repeatable reads should evaluate against a frozen copy.

        Raises:
            UnknownObjectError: if no such node exists.
            FrozenGraphError: if the graph has been frozen.
        """
        with self._lock:
            if self._frozen:
                raise FrozenGraphError(f"graph {self.name!r} is frozen; mutations are disabled")
            if node_id not in self._nodes:
                raise UnknownObjectError(f"unknown node: {node_id!r}")
            old = self._nodes[node_id]
            self._pre_commit(
                {
                    "op": "set_node_property",
                    "v": self._version + 1,
                    "a": {"id": node_id, "name": name, "value": value},
                }
            )
            properties = dict(old.properties)
            properties[name] = value
            node = replace(old, properties=properties)
            self._nodes[node_id] = node
            self._node_list[self._node_slot[node_id]] = node
            self._version += 1
            self._compact = None
            self._journal_append(
                _MutationRecord(self._version, "node-prop", old.label, node_id)
            )
            return node

    def set_edge_property(self, edge_id: str, name: str, value: Any) -> Edge:
        """Set property ``name`` of edge ``edge_id`` to ``value`` and return the new edge.

        Same semantics and caveats as :meth:`set_node_property`.

        Raises:
            UnknownObjectError: if no such edge exists.
            FrozenGraphError: if the graph has been frozen.
        """
        with self._lock:
            if self._frozen:
                raise FrozenGraphError(f"graph {self.name!r} is frozen; mutations are disabled")
            if edge_id not in self._edges:
                raise UnknownObjectError(f"unknown edge: {edge_id!r}")
            old = self._edges[edge_id]
            self._pre_commit(
                {
                    "op": "set_edge_property",
                    "v": self._version + 1,
                    "a": {"id": edge_id, "name": name, "value": value},
                }
            )
            properties = dict(old.properties)
            properties[name] = value
            edge = replace(old, properties=properties)
            self._edges[edge_id] = edge
            self._edge_list[self._edge_slot[edge_id]] = edge
            self._version += 1
            self._compact = None
            self._journal_append(
                _MutationRecord(self._version, "edge-prop", old.label, edge_id)
            )
            return edge

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with identifier ``node_id``.

        Raises:
            UnknownObjectError: if no such node exists.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownObjectError(f"unknown node: {node_id!r}") from None

    def edge(self, edge_id: str) -> Edge:
        """Return the edge with identifier ``edge_id``.

        Raises:
            UnknownObjectError: if no such edge exists.
        """
        try:
            return self._edges[edge_id]
        except KeyError:
            raise UnknownObjectError(f"unknown edge: {edge_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        """Return ``True`` if ``node_id`` identifies a node of the graph."""
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        """Return ``True`` if ``edge_id`` identifies an edge of the graph."""
        return edge_id in self._edges

    def object(self, object_id: str) -> Node | Edge:
        """Return the node or edge with the given identifier.

        Raises:
            UnknownObjectError: if the identifier matches neither.
        """
        if object_id in self._nodes:
            return self._nodes[object_id]
        if object_id in self._edges:
            return self._edges[object_id]
        raise UnknownObjectError(f"unknown object: {object_id!r}")

    def label_of(self, object_id: str) -> str | None:
        """Return ``lambda(o)`` for a node or edge identifier (``None`` if unlabeled)."""
        return self.object(object_id).label

    def property_of(self, object_id: str, name: str, default: Any = None) -> Any:
        """Return ``nu(o, name)`` for a node or edge identifier."""
        return self.object(object_id).property(name, default)

    def nodes(self) -> list[Node]:
        """Return all nodes — the atom set ``Nodes(G)`` (paths of length zero)."""
        return list(self._nodes.values())

    def edges(self) -> list[Edge]:
        """Return all edges — the atom set ``Edges(G)`` (paths of length one)."""
        return list(self._edges.values())

    def node_ids(self) -> list[str]:
        """Return all node identifiers (insertion order)."""
        return list(self._nodes)

    def edge_ids(self) -> list[str]:
        """Return all edge identifiers (insertion order)."""
        return list(self._edges)

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over nodes without materializing a list."""
        return iter(self._nodes.values())

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over edges without materializing a list."""
        return iter(self._edges.values())

    # ------------------------------------------------------------------
    # Adjacency and label indexes
    # ------------------------------------------------------------------
    def out_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose source is ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return [self._edges[eid] for eid in self._out[node_id]]

    def in_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose target is ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return [self._edges[eid] for eid in self._in[node_id]]

    def out_degree(self, node_id: str) -> int:
        """Return the number of outgoing edges of ``node_id`` in O(1).

        Counts the adjacency-index entries directly instead of materializing
        :class:`Edge` lists via :meth:`out_edges` — degree sweeps (the cost
        model, :func:`~repro.graph.stats.compute_statistics`) stay linear in
        the number of nodes rather than the number of edges.
        """
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return len(self._out[node_id])

    def in_degree(self, node_id: str) -> int:
        """Return the number of incoming edges of ``node_id`` in O(1)."""
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return len(self._in[node_id])

    def neighbors(self, node_id: str) -> list[str]:
        """Return target node identifiers reachable via one outgoing edge."""
        return [edge.target for edge in self.out_edges(node_id)]

    def nodes_by_label(self, label: str) -> list[Node]:
        """Return the nodes labelled ``label`` (possibly empty)."""
        return [self._nodes[nid] for nid in self._nodes_by_label.get(label, [])]

    def edges_by_label(self, label: str) -> list[Edge]:
        """Return the edges labelled ``label`` (possibly empty)."""
        return [self._edges[eid] for eid in self._edges_by_label.get(label, [])]

    def node_labels(self) -> set[str]:
        """Return the set of labels used by at least one node."""
        return set(self._nodes_by_label)

    def edge_labels(self) -> set[str]:
        """Return the set of labels used by at least one edge."""
        return set(self._edges_by_label)

    # ------------------------------------------------------------------
    # Size and dunder protocol
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        """Return ``|N|``."""
        return len(self._nodes)

    def num_edges(self) -> int:
        """Return ``|E|``."""
        return len(self._edges)

    def order(self) -> int:
        """Synonym for :meth:`num_nodes` (graph-theory terminology)."""
        return self.num_nodes()

    def size(self) -> int:
        """Synonym for :meth:`num_edges` (graph-theory terminology)."""
        return self.num_edges()

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._nodes or object_id in self._edges

    def __len__(self) -> int:
        return len(self._nodes) + len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes()}, "
            f"edges={self.num_edges()})"
        )

    # ------------------------------------------------------------------
    # Snapshots and freezing
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called (mutations raise afterwards)."""
        return self._frozen

    def freeze(self) -> "PropertyGraph":
        """Disable mutation and build the columnar core; returns the graph.

        A frozen graph is safe to share across threads without snapshots:
        every subsequent :meth:`add_node` / :meth:`add_edge` raises
        :class:`~repro.errors.FrozenGraphError` until :meth:`thaw` is called.
        Freezing also compiles the graph into its
        :class:`~repro.graph.compact.CompactGraph` core (CSR adjacency,
        interned labels), switching the closure engine onto the int-encoded
        fast path — see :meth:`ensure_compact` for the build-only variant.
        """
        with self._lock:
            self._frozen = True
            self._ensure_compact_locked()
        return self

    def thaw(self) -> "PropertyGraph":
        """Re-enable mutation after :meth:`freeze`; drops the columnar core.

        This is the explicit form of the transparent thaw the
        :class:`~repro.api.Database` auto-freeze performs: a write request
        against an auto-frozen graph thaws it, applies the mutation, and the
        next read re-freezes at the new version.
        """
        with self._lock:
            self._frozen = False
            self._compact = None
        return self

    def ensure_compact(self):
        """Return a :class:`~repro.graph.compact.CompactGraph` for the current
        version, building (and caching) it if necessary.

        Unlike :meth:`freeze` this does not disable mutation — the core is
        simply invalidated by the next write.  Read-heavy consumers (the
        ``Database`` session path, the ``QueryService``) call this on first
        read so closures run columnar whenever the graph is quiescent.
        """
        with self._lock:
            return self._ensure_compact_locked()

    def _ensure_compact_locked(self):
        compact = self._compact
        if compact is None or compact.version != self._version:
            from repro.graph.compact import CompactGraph

            compact = self._compact = CompactGraph.from_graph(self)
        return compact

    def compact_core(self):
        """The cached columnar core if it matches the current version, else ``None``.

        This is the cheap, lock-free detection probe the closure dispatch
        uses on every query; it never builds anything.
        """
        compact = self._compact
        if compact is not None and compact.version == self._version:
            return compact
        return None

    def snapshot(self) -> "GraphSnapshot":
        """Return an immutable view of the graph pinned to the current version.

        The graph is append-only, so the snapshot copies nothing: it filters
        every read by the version at which each object was added
        (copy-on-write where the "write" side is the live graph itself).
        In-flight queries evaluated against a snapshot therefore never observe
        mutations that commit after the snapshot was taken — the isolation
        guarantee the concurrent :class:`~repro.service.QueryService` relies
        on.  Snapshots taken at the same version are shared.
        """
        from repro.graph.snapshot import GraphSnapshot

        with self._lock:
            last = self._last_snapshot
            if last is not None and last.version == self._version:
                return last
            snap = GraphSnapshot(self, self._version, len(self._nodes), len(self._edges))
            self._last_snapshot = snap
            return snap

    # ------------------------------------------------------------------
    # Write listeners and delta tracking
    # ------------------------------------------------------------------
    def add_write_listener(self, listener: Callable[[dict[str, Any]], None]) -> None:
        """Register ``listener`` to be called before each mutation commits.

        The listener receives the op record ``{"op", "v", "a"}`` describing
        the mutation about to be applied at version ``v``.  It runs under the
        graph lock *after* validation and *before* any state changes; raising
        aborts the mutation entirely (the version is not bumped).  This is
        how :class:`~repro.graph.wal.WriteAheadLog` achieves write-ahead
        semantics: a mutation that could not be logged never happens.
        """
        with self._lock:
            self._write_listeners.append(listener)

    def remove_write_listener(self, listener: Callable[[dict[str, Any]], None]) -> None:
        """Unregister a listener added by :meth:`add_write_listener` (no-op if absent)."""
        with self._lock:
            try:
                self._write_listeners.remove(listener)
            except ValueError:
                pass

    def _pre_commit(self, op: dict[str, Any]) -> None:
        for listener in self._write_listeners:
            listener(op)

    def _journal_append(self, record: _MutationRecord) -> None:
        self._journal.append(record)
        while len(self._journal) > JOURNAL_CAPACITY:
            dropped = self._journal.popleft()
            self._journal_floor = dropped.version

    def delta_between(self, from_version: int, to_version: int | None = None) -> GraphDelta | None:
        """Return what changed in ``(from_version, to_version]``, or ``None``.

        ``to_version`` defaults to the current version.  Returns ``None``
        when the journal window no longer covers ``from_version`` (the caller
        must then assume everything changed — conservative full
        invalidation).  An empty range yields an empty delta.
        """
        with self._lock:
            if to_version is None:
                to_version = self._version
            if from_version >= to_version:
                return GraphDelta(from_version=from_version, to_version=to_version)
            if from_version < self._journal_floor:
                return None
            records = [r for r in self._journal if from_version < r.version <= to_version]
            return build_delta(records, from_version, to_version)

    def _fast_forward_version(self, version: int) -> None:
        """Advance the version counter without a mutation (restore support).

        Used when a graph is rebuilt from a serialized form whose recorded
        version exceeds the rebuild's mutation count (property updates bump
        the version without adding objects).  The journal is reset because
        its records describe rebuild-time version numbers, not the restored
        timeline.
        """
        with self._lock:
            if version < self._version:
                raise ValueError(
                    f"cannot fast-forward version backwards: {self._version} -> {version}"
                )
            self._version = version
            self._journal.clear()
            self._journal_floor = version
            self._last_snapshot = None
            self._compact = None

    # ------------------------------------------------------------------
    # Pickling (the lock and write listeners are process-local state)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_last_snapshot"] = None
        state["_write_listeners"] = []
        # The columnar core is a derived cache; receivers rebuild it on demand
        # (and the process pool ships the CompactGraph itself when the whole
        # graph is frozen), so the wire payload stays the object graph only.
        state["_compact"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_compact", None)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def add_nodes(self, nodes: Iterable[tuple[str, str | None, Mapping[str, Any] | None]]) -> None:
        """Add many nodes given ``(id, label, properties)`` triples."""
        for node_id, label, properties in nodes:
            self.add_node(node_id, label, properties)

    def add_edges(
        self,
        edges: Iterable[tuple[str, str, str, str | None, Mapping[str, Any] | None]],
    ) -> None:
        """Add many edges given ``(id, source, target, label, properties)`` tuples."""
        for edge_id, source, target, label, properties in edges:
            self.add_edge(edge_id, source, target, label, properties)

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Return a deep-enough copy of the graph (objects are immutable and shared)."""
        return materialize(self, name or self.name)

    def subgraph_by_edge_labels(self, labels: Iterable[str], name: str | None = None) -> "PropertyGraph":
        """Return the subgraph keeping every node but only edges with one of ``labels``."""
        wanted = set(labels)
        return materialize(
            self, name or f"{self.name}[{','.join(sorted(wanted))}]", edge_labels=wanted
        )


def materialize(
    source, name: str, edge_labels: "set[str] | None" = None
) -> PropertyGraph:
    """Copy a graph-like object into a fresh, mutable :class:`PropertyGraph`.

    ``source`` is anything exposing ``iter_nodes()`` / ``iter_edges()`` — a
    live :class:`PropertyGraph` or an immutable
    :class:`~repro.graph.snapshot.GraphSnapshot` view; both route their
    ``copy`` / ``subgraph_by_edge_labels`` through this helper.  When
    ``edge_labels`` is given, only edges carrying one of those labels are
    kept (every node is kept regardless).
    """
    clone = PropertyGraph(name=name)
    for node in source.iter_nodes():
        clone.add_node(node.id, node.label, node.properties)
    for edge in source.iter_edges():
        if edge_labels is None or edge.label in edge_labels:
            clone.add_edge(edge.id, edge.source, edge.target, edge.label, edge.properties)
    return clone
