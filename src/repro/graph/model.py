"""Property graph data model (paper Definition 2.1).

A property graph is a tuple ``G = (N, E, rho, lambda, nu)`` where ``N`` and
``E`` are disjoint finite sets of node and edge identifiers, ``rho`` maps each
edge to its (source, target) node pair, ``lambda`` partially assigns a single
label to nodes and edges, and ``nu`` partially assigns property/value pairs to
nodes and edges.

The classes in this module are deliberately simple, immutable value objects
plus one mutable container (:class:`PropertyGraph`).  Identifiers are plain
strings; values are arbitrary Python objects (typically strings and numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import (
    DuplicateObjectError,
    InvalidEdgeError,
    UnknownObjectError,
)

__all__ = ["Node", "Edge", "PropertyGraph"]


@dataclass(frozen=True)
class Node:
    """A node of a property graph.

    Attributes:
        id: The node identifier (unique across nodes *and* edges).
        label: The optional label assigned by ``lambda``; ``None`` if unlabeled.
        properties: The property/value pairs assigned by ``nu``.
    """

    id: str
    label: str | None = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def property(self, name: str, default: Any = None) -> Any:
        """Return the value of property ``name`` or ``default`` if absent."""
        return self.properties.get(name, default)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f":{self.label}" if self.label else ""
        return f"({self.id}{label})"


@dataclass(frozen=True)
class Edge:
    """A directed edge of a property graph.

    Attributes:
        id: The edge identifier (unique across nodes *and* edges).
        source: Identifier of the source node (``rho(e) = (source, target)``).
        target: Identifier of the target node.
        label: The optional label assigned by ``lambda``; ``None`` if unlabeled.
        properties: The property/value pairs assigned by ``nu``.
    """

    id: str
    source: str
    target: str
    label: str | None = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def property(self, name: str, default: Any = None) -> Any:
        """Return the value of property ``name`` or ``default`` if absent."""
        return self.properties.get(name, default)

    def endpoints(self) -> tuple[str, str]:
        """Return ``rho(e)`` as a ``(source, target)`` pair."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f":{self.label}" if self.label else ""
        return f"-[{self.id}{label}]->"


class PropertyGraph:
    """A directed labelled multigraph with properties (Definition 2.1).

    The graph owns its :class:`Node` and :class:`Edge` objects and offers
    index-backed accessors used throughout the algebra evaluator:

    * ``nodes()`` / ``edges()`` — the atom sets ``Nodes(G)`` and ``Edges(G)``;
    * ``out_edges(node_id)`` / ``in_edges(node_id)`` — adjacency lists;
    * ``edges_by_label(label)`` / ``nodes_by_label(label)`` — label indexes.
    """

    def __init__(self, name: str = "G") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}
        self._nodes_by_label: dict[str, list[str]] = {}
        self._edges_by_label: dict[str, list[str]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: incremented by every successful ``add_node``/``add_edge``.

        Consumers that cache anything derived from the graph (the engine's
        plan cache, memoized statistics) key their entries on this counter so
        a mutation invalidates them without any explicit notification.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        """Register a node and return it.

        Raises:
            DuplicateObjectError: if the identifier is already used by a node
                or an edge (``N`` and ``E`` must be disjoint).
        """
        if node_id in self._nodes or node_id in self._edges:
            raise DuplicateObjectError(f"object identifier already in use: {node_id!r}")
        node = Node(id=node_id, label=label, properties=dict(properties or {}))
        self._nodes[node_id] = node
        self._out.setdefault(node_id, [])
        self._in.setdefault(node_id, [])
        if label is not None:
            self._nodes_by_label.setdefault(label, []).append(node_id)
        self._version += 1
        return node

    def add_edge(
        self,
        edge_id: str,
        source: str,
        target: str,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> Edge:
        """Register a directed edge ``source -> target`` and return it.

        Raises:
            DuplicateObjectError: if the identifier is already in use.
            InvalidEdgeError: if either endpoint is not a known node.
        """
        if edge_id in self._nodes or edge_id in self._edges:
            raise DuplicateObjectError(f"object identifier already in use: {edge_id!r}")
        if source not in self._nodes:
            raise InvalidEdgeError(f"unknown source node {source!r} for edge {edge_id!r}")
        if target not in self._nodes:
            raise InvalidEdgeError(f"unknown target node {target!r} for edge {edge_id!r}")
        edge = Edge(
            id=edge_id,
            source=source,
            target=target,
            label=label,
            properties=dict(properties or {}),
        )
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        if label is not None:
            self._edges_by_label.setdefault(label, []).append(edge_id)
        self._version += 1
        return edge

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with identifier ``node_id``.

        Raises:
            UnknownObjectError: if no such node exists.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownObjectError(f"unknown node: {node_id!r}") from None

    def edge(self, edge_id: str) -> Edge:
        """Return the edge with identifier ``edge_id``.

        Raises:
            UnknownObjectError: if no such edge exists.
        """
        try:
            return self._edges[edge_id]
        except KeyError:
            raise UnknownObjectError(f"unknown edge: {edge_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        """Return ``True`` if ``node_id`` identifies a node of the graph."""
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        """Return ``True`` if ``edge_id`` identifies an edge of the graph."""
        return edge_id in self._edges

    def object(self, object_id: str) -> Node | Edge:
        """Return the node or edge with the given identifier.

        Raises:
            UnknownObjectError: if the identifier matches neither.
        """
        if object_id in self._nodes:
            return self._nodes[object_id]
        if object_id in self._edges:
            return self._edges[object_id]
        raise UnknownObjectError(f"unknown object: {object_id!r}")

    def label_of(self, object_id: str) -> str | None:
        """Return ``lambda(o)`` for a node or edge identifier (``None`` if unlabeled)."""
        return self.object(object_id).label

    def property_of(self, object_id: str, name: str, default: Any = None) -> Any:
        """Return ``nu(o, name)`` for a node or edge identifier."""
        return self.object(object_id).property(name, default)

    def nodes(self) -> list[Node]:
        """Return all nodes — the atom set ``Nodes(G)`` (paths of length zero)."""
        return list(self._nodes.values())

    def edges(self) -> list[Edge]:
        """Return all edges — the atom set ``Edges(G)`` (paths of length one)."""
        return list(self._edges.values())

    def node_ids(self) -> list[str]:
        """Return all node identifiers (insertion order)."""
        return list(self._nodes)

    def edge_ids(self) -> list[str]:
        """Return all edge identifiers (insertion order)."""
        return list(self._edges)

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over nodes without materializing a list."""
        return iter(self._nodes.values())

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over edges without materializing a list."""
        return iter(self._edges.values())

    # ------------------------------------------------------------------
    # Adjacency and label indexes
    # ------------------------------------------------------------------
    def out_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose source is ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return [self._edges[eid] for eid in self._out[node_id]]

    def in_edges(self, node_id: str) -> list[Edge]:
        """Return the edges whose target is ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownObjectError(f"unknown node: {node_id!r}")
        return [self._edges[eid] for eid in self._in[node_id]]

    def out_degree(self, node_id: str) -> int:
        """Return the number of outgoing edges of ``node_id``."""
        return len(self.out_edges(node_id))

    def in_degree(self, node_id: str) -> int:
        """Return the number of incoming edges of ``node_id``."""
        return len(self.in_edges(node_id))

    def neighbors(self, node_id: str) -> list[str]:
        """Return target node identifiers reachable via one outgoing edge."""
        return [edge.target for edge in self.out_edges(node_id)]

    def nodes_by_label(self, label: str) -> list[Node]:
        """Return the nodes labelled ``label`` (possibly empty)."""
        return [self._nodes[nid] for nid in self._nodes_by_label.get(label, [])]

    def edges_by_label(self, label: str) -> list[Edge]:
        """Return the edges labelled ``label`` (possibly empty)."""
        return [self._edges[eid] for eid in self._edges_by_label.get(label, [])]

    def node_labels(self) -> set[str]:
        """Return the set of labels used by at least one node."""
        return set(self._nodes_by_label)

    def edge_labels(self) -> set[str]:
        """Return the set of labels used by at least one edge."""
        return set(self._edges_by_label)

    # ------------------------------------------------------------------
    # Size and dunder protocol
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        """Return ``|N|``."""
        return len(self._nodes)

    def num_edges(self) -> int:
        """Return ``|E|``."""
        return len(self._edges)

    def order(self) -> int:
        """Synonym for :meth:`num_nodes` (graph-theory terminology)."""
        return self.num_nodes()

    def size(self) -> int:
        """Synonym for :meth:`num_edges` (graph-theory terminology)."""
        return self.num_edges()

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._nodes or object_id in self._edges

    def __len__(self) -> int:
        return len(self._nodes) + len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes()}, "
            f"edges={self.num_edges()})"
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def add_nodes(self, nodes: Iterable[tuple[str, str | None, Mapping[str, Any] | None]]) -> None:
        """Add many nodes given ``(id, label, properties)`` triples."""
        for node_id, label, properties in nodes:
            self.add_node(node_id, label, properties)

    def add_edges(
        self,
        edges: Iterable[tuple[str, str, str, str | None, Mapping[str, Any] | None]],
    ) -> None:
        """Add many edges given ``(id, source, target, label, properties)`` tuples."""
        for edge_id, source, target, label, properties in edges:
            self.add_edge(edge_id, source, target, label, properties)

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Return a deep-enough copy of the graph (objects are immutable and shared)."""
        clone = PropertyGraph(name=name or self.name)
        for node in self.iter_nodes():
            clone.add_node(node.id, node.label, node.properties)
        for edge in self.iter_edges():
            clone.add_edge(edge.id, edge.source, edge.target, edge.label, edge.properties)
        return clone

    def subgraph_by_edge_labels(self, labels: Iterable[str], name: str | None = None) -> "PropertyGraph":
        """Return the subgraph keeping every node but only edges with one of ``labels``."""
        wanted = set(labels)
        clone = PropertyGraph(name=name or f"{self.name}[{','.join(sorted(wanted))}]")
        for node in self.iter_nodes():
            clone.add_node(node.id, node.label, node.properties)
        for edge in self.iter_edges():
            if edge.label in wanted:
                clone.add_edge(edge.id, edge.source, edge.target, edge.label, edge.properties)
        return clone
