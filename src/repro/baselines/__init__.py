"""Classical RPQ evaluation baselines (traversal, automaton product, matrix algebra)."""

from repro.baselines.automaton_eval import (
    ProductSearchResult,
    evaluate_rpq_pairs,
    evaluate_rpq_shortest_witnesses,
)
from repro.baselines.matrix import MatrixRPQEvaluator, evaluate_rpq_matrix
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal

__all__ = [
    "TraversalOptions",
    "evaluate_rpq_traversal",
    "ProductSearchResult",
    "evaluate_rpq_pairs",
    "evaluate_rpq_shortest_witnesses",
    "MatrixRPQEvaluator",
    "evaluate_rpq_matrix",
]
