"""Automaton product-graph RPQ evaluation (Section 8.2, automata-based approaches).

This baseline runs a breadth-first search over the *product* of the property
graph and the regex NFA.  It answers the classical RPQ question — which node
pairs are connected by a matching path — and can additionally reconstruct one
shortest witness path per pair, which is exactly the capability the paper
notes most systems stop at ("they do not return the entire paths, just the
source and target nodes").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.rpq.ast import RegexNode
from repro.rpq.automaton import NFA, build_nfa

__all__ = ["ProductSearchResult", "evaluate_rpq_pairs", "evaluate_rpq_shortest_witnesses"]


@dataclass
class ProductSearchResult:
    """Result of a product-graph BFS from a set of sources.

    Attributes:
        pairs: Matching ``(source, target)`` node pairs.
        distances: Shortest matching path length per pair.
        visited_states: Number of product states explored (work measure).
    """

    pairs: set[tuple[str, str]] = field(default_factory=set)
    distances: dict[tuple[str, str], int] = field(default_factory=dict)
    visited_states: int = 0


def evaluate_rpq_pairs(
    graph: PropertyGraph,
    regex: RegexNode | str,
    sources: tuple[str, ...] | None = None,
    budget: QueryBudget | None = None,
) -> ProductSearchResult:
    """Return all node pairs connected by a path whose label word matches ``regex``.

    Runs one BFS per source over product states ``(graph node, NFA state set)``;
    each product state is visited at most once per source, so the search always
    terminates, even on cyclic graphs and WALK-style regexes.
    """
    nfa = build_nfa(regex)
    result = ProductSearchResult()
    start_nodes = sources if sources is not None else tuple(graph.node_ids())

    for source in start_nodes:
        if budget is not None:
            budget.checkpoint("product-bfs")
        _bfs_from(graph, nfa, source, result, budget)
    return result


def _bfs_from(
    graph: PropertyGraph,
    nfa: NFA,
    source: str,
    result: ProductSearchResult,
    budget: QueryBudget | None = None,
) -> None:
    initial = nfa.initial_states()
    queue: deque[tuple[str, frozenset[int], int]] = deque([(source, initial, 0)])
    seen: set[tuple[str, frozenset[int]]] = {(source, initial)}

    if nfa.is_accepting(initial):
        result.pairs.add((source, source))
        result.distances.setdefault((source, source), 0)

    budgeted = budget is not None
    batch = QueryBudget.CHARGE_BATCH
    pending = 0
    while queue:
        node, states, distance = queue.popleft()
        result.visited_states += 1
        if budgeted:
            pending += 1
            if pending >= batch:
                budget.note_depth(distance)
                budget.charge(pending, "product-bfs")
                pending = 0
        for edge in graph.out_edges(node):
            next_states = nfa.step(states, edge.label)
            if not next_states:
                continue
            key = (edge.target, next_states)
            if key in seen:
                continue
            seen.add(key)
            if nfa.is_accepting(next_states):
                pair = (source, edge.target)
                result.pairs.add(pair)
                result.distances.setdefault(pair, distance + 1)
            queue.append((edge.target, next_states, distance + 1))
    if budgeted and pending:
        budget.charge(pending, "product-bfs")


def evaluate_rpq_shortest_witnesses(
    graph: PropertyGraph,
    regex: RegexNode | str,
    sources: tuple[str, ...] | None = None,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Return one shortest witness path per matching node pair.

    The witness reconstruction stores, for every product state first reached,
    the edge used to reach it; following predecessors back to the source node
    yields a shortest matching path (ANY SHORTEST semantics — the particular
    witness among equally short ones depends on edge iteration order).
    """
    nfa = build_nfa(regex)
    start_nodes = sources if sources is not None else tuple(graph.node_ids())

    # Witnesses are unique by construction: every witness starts at its BFS
    # source and at most one is produced per (source, target) pair, so the
    # result set can be bulk-built without per-path dedup probes.  Duplicate
    # caller-supplied sources are collapsed to keep that guarantee.
    witnesses: list[Path] = []
    for source in dict.fromkeys(start_nodes):
        if budget is not None:
            budget.checkpoint("witness-bfs")
        witnesses.extend(_shortest_witnesses_from(graph, nfa, source, budget))
    return PathSet.from_unique(witnesses)


def _shortest_witnesses_from(
    graph: PropertyGraph,
    nfa: NFA,
    source: str,
    budget: QueryBudget | None = None,
) -> list[Path]:
    initial = nfa.initial_states()
    # predecessor[(node, states)] = (previous node, previous states, edge id)
    predecessor: dict[tuple[str, frozenset[int]], tuple[str, frozenset[int], str] | None] = {
        (source, initial): None
    }
    queue: deque[tuple[str, frozenset[int]]] = deque([(source, initial)])
    witnesses: list[Path] = []
    reached_targets: set[str] = set()

    if nfa.is_accepting(initial):
        witnesses.append(Path.from_node(graph, source))
        reached_targets.add(source)

    budgeted = budget is not None
    batch = QueryBudget.CHARGE_BATCH
    pending = 0
    while queue:
        node, states = queue.popleft()
        if budgeted:
            pending += 1
            if pending >= batch:
                budget.charge(pending, "witness-bfs")
                pending = 0
        for edge in graph.out_edges(node):
            next_states = nfa.step(states, edge.label)
            if not next_states:
                continue
            key = (edge.target, next_states)
            if key in predecessor:
                continue
            predecessor[key] = (node, states, edge.id)
            if nfa.is_accepting(next_states) and edge.target not in reached_targets:
                witnesses.append(_reconstruct(graph, predecessor, key))
                reached_targets.add(edge.target)
            queue.append(key)
    if budgeted and pending:
        budget.charge(pending, "witness-bfs")
    return witnesses


def _reconstruct(
    graph: PropertyGraph,
    predecessor: dict[tuple[str, frozenset[int]], tuple[str, frozenset[int], str] | None],
    key: tuple[str, frozenset[int]],
) -> Path:
    nodes: list[str] = [key[0]]
    edges: list[str] = []
    current = key
    while True:
        entry = predecessor[current]
        if entry is None:
            break
        prev_node, prev_states, edge_id = entry
        edges.append(edge_id)
        nodes.append(prev_node)
        current = (prev_node, prev_states)
    nodes.reverse()
    edges.reverse()
    return Path(graph, nodes, edges, validate=False)
