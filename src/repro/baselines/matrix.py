"""Matrix-based RPQ reachability (Section 8.2, matrix-based methods).

The graph is represented as one boolean adjacency matrix per edge label
(numpy arrays); regular-expression operators map onto matrix algebra:

* concatenation  -> boolean matrix multiplication;
* alternation    -> element-wise OR;
* Kleene star    -> transitive closure (iterated squaring) OR identity;
* Kleene plus    -> closure without the identity term.

Like most matrix approaches, the result is a reachability relation — which
node pairs are connected by a matching path — not the paths themselves.  The
benchmark harness uses it as the third baseline flavor next to the traversal
and automaton baselines.
"""

from __future__ import annotations

import numpy as np

from repro.graph.model import PropertyGraph
from repro.rpq.ast import (
    Alternation,
    AnyLabel,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)
from repro.rpq.parser import parse_regex

__all__ = ["MatrixRPQEvaluator", "evaluate_rpq_matrix"]


class MatrixRPQEvaluator:
    """Evaluate regular path queries as boolean matrix expressions over a graph."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._node_index: dict[str, int] = {
            node_id: index for index, node_id in enumerate(graph.node_ids())
        }
        self._size = len(self._node_index)
        self._label_matrices: dict[str, np.ndarray] = {}
        self._any_matrix = np.zeros((self._size, self._size), dtype=bool)
        for edge in graph.iter_edges():
            row = self._node_index[edge.source]
            col = self._node_index[edge.target]
            self._any_matrix[row, col] = True
            if edge.label is not None:
                matrix = self._label_matrices.get(edge.label)
                if matrix is None:
                    matrix = np.zeros((self._size, self._size), dtype=bool)
                    self._label_matrices[edge.label] = matrix
                matrix[row, col] = True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reachability(self, regex: RegexNode | str) -> np.ndarray:
        """Return the boolean reachability matrix of ``regex`` over the graph."""
        if isinstance(regex, str):
            regex = parse_regex(regex)
        return self._evaluate(regex)

    def pairs(self, regex: RegexNode | str) -> set[tuple[str, str]]:
        """Return the set of ``(source, target)`` node-identifier pairs matching ``regex``."""
        matrix = self.reachability(regex)
        node_ids = list(self._node_index)
        rows, cols = np.nonzero(matrix)
        return {(node_ids[row], node_ids[col]) for row, col in zip(rows.tolist(), cols.tolist())}

    def count_pairs(self, regex: RegexNode | str) -> int:
        """Return the number of matching node pairs."""
        return int(self.reachability(regex).sum())

    # ------------------------------------------------------------------
    # Regex-to-matrix translation
    # ------------------------------------------------------------------
    def _evaluate(self, node: RegexNode) -> np.ndarray:
        if isinstance(node, Label):
            matrix = self._label_matrices.get(node.name)
            if matrix is None:
                return np.zeros((self._size, self._size), dtype=bool)
            return matrix.copy()
        if isinstance(node, AnyLabel):
            return self._any_matrix.copy()
        if isinstance(node, Epsilon):
            return np.eye(self._size, dtype=bool)
        if isinstance(node, Concat):
            left = self._evaluate(node.left)
            right = self._evaluate(node.right)
            return _bool_matmul(left, right)
        if isinstance(node, Alternation):
            return self._evaluate(node.left) | self._evaluate(node.right)
        if isinstance(node, Star):
            return _transitive_closure(self._evaluate(node.operand)) | np.eye(
                self._size, dtype=bool
            )
        if isinstance(node, Plus):
            return _transitive_closure(self._evaluate(node.operand))
        if isinstance(node, Optional):
            return self._evaluate(node.operand) | np.eye(self._size, dtype=bool)
        raise TypeError(f"cannot evaluate regex node of type {type(node).__name__}")


def _bool_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Boolean matrix multiplication."""
    return (left.astype(np.uint8) @ right.astype(np.uint8)) > 0


def _transitive_closure(matrix: np.ndarray) -> np.ndarray:
    """Transitive closure (one or more steps) by repeated squaring."""
    closure = matrix.copy()
    previous_count = -1
    current = matrix.copy()
    while int(closure.sum()) != previous_count:
        previous_count = int(closure.sum())
        current = _bool_matmul(current, matrix)
        closure |= current
    return closure


def evaluate_rpq_matrix(graph: PropertyGraph, regex: RegexNode | str) -> set[tuple[str, str]]:
    """Convenience wrapper: matching node pairs of ``regex`` via matrix algebra."""
    return MatrixRPQEvaluator(graph).pairs(regex)
