"""Traversal-based RPQ evaluation (the classical baseline of Section 8.2).

This is the "extend a graph traversal algorithm with regular-expression
matching" approach: a depth-first search from every start node, tracking the
set of NFA states reached so far, emitting a path whenever the state set is
accepting.  Restrictors are enforced during the traversal by pruning branches
that repeat edges (trail), repeat nodes (acyclic / simple), or exceed a
length bound (walk).

The baseline returns full paths, like the algebra, so results can be compared
path-for-path; the benchmark harness uses it to quantify the constant-factor
gap between a specialized algorithm and the algebraic evaluator (DESIGN.md,
experiment E-S1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.execution import QueryBudget
from repro.graph.model import PropertyGraph
from repro.paths.path import Path
from repro.paths.pathset import PathSet
from repro.rpq.ast import RegexNode
from repro.rpq.automaton import NFA, build_nfa
from repro.semantics.restrictors import Restrictor, shortest_paths_per_pair

__all__ = ["TraversalOptions", "evaluate_rpq_traversal"]


@dataclass(frozen=True)
class TraversalOptions:
    """Options for the traversal baseline.

    Attributes:
        restrictor: The path semantics to enforce during traversal.
        max_length: Length bound; mandatory for WALK on cyclic graphs.
        sources: Optional subset of start node identifiers (defaults to all).
        targets: Optional subset of end node identifiers (defaults to all).
    """

    restrictor: Restrictor = Restrictor.WALK
    max_length: int | None = None
    sources: tuple[str, ...] | None = None
    targets: tuple[str, ...] | None = None


def evaluate_rpq_traversal(
    graph: PropertyGraph,
    regex: RegexNode | str,
    options: TraversalOptions | None = None,
    budget: QueryBudget | None = None,
) -> PathSet:
    """Evaluate a regular path query by DFS + NFA simulation and return full paths.

    ``budget`` is checked once per traversal root and every few hundred DFS
    expansions, so a deadline interrupts even a single deep exploration.
    """
    options = options or TraversalOptions()
    nfa = build_nfa(regex)

    if options.restrictor in (Restrictor.WALK, Restrictor.SHORTEST) and options.max_length is None:
        raise EvaluationError(
            "the traversal baseline requires max_length under WALK/SHORTEST semantics "
            "(the exploration may be infinite otherwise); use the automaton baseline "
            "for unbounded shortest paths"
        )

    results = PathSet()
    sources = options.sources if options.sources is not None else tuple(graph.node_ids())
    targets = set(options.targets) if options.targets is not None else None

    for source in sources:
        if budget is not None:
            budget.checkpoint("traversal-dfs")
        _traverse_from(graph, nfa, source, options, targets, results, budget)

    if options.restrictor is Restrictor.SHORTEST:
        return shortest_paths_per_pair(results)
    return results


def _traverse_from(
    graph: PropertyGraph,
    nfa: NFA,
    source: str,
    options: TraversalOptions,
    targets: set[str] | None,
    results: PathSet,
    budget: QueryBudget | None = None,
) -> None:
    """DFS from ``source`` carrying the NFA state set along the partial path."""
    max_length = options.max_length
    restrictor = options.restrictor

    initial_states = nfa.initial_states()

    def emit(nodes: list[str], edges: list[str]) -> None:
        if targets is not None and nodes[-1] not in targets:
            return
        results.add(Path(graph, list(nodes), list(edges), validate=False))

    if nfa.matches_empty_word():
        emit([source], [])

    # Iterative DFS over (current node, states, node stack, edge stack).
    stack: list[tuple[str, frozenset[int], tuple[str, ...], tuple[str, ...]]] = [
        (source, initial_states, (source,), ())
    ]
    budgeted = budget is not None
    batch = QueryBudget.CHARGE_BATCH
    pending = 0
    while stack:
        node, states, nodes, edges = stack.pop()
        if budgeted:
            pending += 1
            if pending >= batch:
                budget.note_depth(len(edges))
                budget.charge(pending, "traversal-dfs")
                pending = 0
        if max_length is not None and len(edges) >= max_length:
            continue
        for edge in graph.out_edges(node):
            next_states = nfa.step(states, edge.label)
            if not next_states:
                continue
            if not _admissible(restrictor, nodes, edges, edge.id, edge.target):
                continue
            new_nodes = nodes + (edge.target,)
            new_edges = edges + (edge.id,)
            if nfa.is_accepting(next_states):
                emit(list(new_nodes), list(new_edges))
            stack.append((edge.target, next_states, new_nodes, new_edges))
    if budgeted and pending:
        budget.charge(pending, "traversal-dfs")


def _admissible(
    restrictor: Restrictor,
    nodes: tuple[str, ...],
    edges: tuple[str, ...],
    new_edge: str,
    new_node: str,
) -> bool:
    """Return whether extending the partial path stays within the restrictor."""
    if restrictor is Restrictor.TRAIL:
        return new_edge not in edges
    if restrictor is Restrictor.ACYCLIC:
        return new_node not in nodes
    if restrictor is Restrictor.SIMPLE:
        # The new node may close the cycle onto the very first node, but may
        # not revisit any interior node; a path that already closed the cycle
        # cannot be extended further without repeating its first node.
        already_closed = len(edges) > 0 and nodes[-1] == nodes[0]
        return not already_closed and new_node not in nodes[1:]
    # WALK and SHORTEST explore freely; SHORTEST is filtered afterwards and
    # relies on max_length or acyclicity of the shortest witnesses for
    # termination of the bounded exploration.
    return True
