"""Concurrent query serving: snapshot-isolated workers over shared caches.

The serving layer on top of the engine facade (see PERFORMANCE.md, "Serving
queries concurrently" and "Process-parallel execution"):

* :class:`QueryService` — thread-safe query service with snapshot isolation,
  a bounded submission queue, per-query deadlines and worker threads; its
  ``execution_mode`` knob swaps the GIL-bound thread workers for a
  process-backed pool (``"processes"``) or a portfolio-racing pool
  (``"race"``);
* :class:`ProcessWorkerPool` — forked worker processes executing queries
  truly in parallel against copy-on-write graph snapshots;
* :class:`StripedLRUCache` — the lock-striped LRU shared by the workers for
  both parsed plans and materialized outcomes;
* :class:`QueryOutcome` / :class:`QueryTicket` / :class:`ServiceStatistics` —
  the result, future and introspection types of the submission API;
* :class:`WorkerDied` — typed attribution for queries lost to a worker-process
  death (reported on the outcome, counted separately from timeouts).
"""

from repro.service.cache import StripedLRUCache
from repro.service.latency import LatencyHistogram
from repro.service.procpool import ProcessWorkerPool, WorkerDied
from repro.service.service import (
    QueryOutcome,
    QueryService,
    QueryTicket,
    ServiceStatistics,
)

__all__ = [
    "QueryService",
    "QueryOutcome",
    "QueryTicket",
    "ServiceStatistics",
    "StripedLRUCache",
    "LatencyHistogram",
    "ProcessWorkerPool",
    "WorkerDied",
]
