"""Concurrent query serving: snapshot-isolated workers over shared caches.

The serving layer on top of the engine facade (see PERFORMANCE.md, "Serving
queries concurrently"):

* :class:`QueryService` — thread-safe query service with snapshot isolation,
  a bounded submission queue, per-query deadlines and worker threads;
* :class:`StripedLRUCache` — the lock-striped LRU shared by the workers for
  both parsed plans and materialized outcomes;
* :class:`QueryOutcome` / :class:`QueryTicket` / :class:`ServiceStatistics` —
  the result, future and introspection types of the submission API.
"""

from repro.service.cache import StripedLRUCache
from repro.service.service import (
    QueryOutcome,
    QueryService,
    QueryTicket,
    ServiceStatistics,
)

__all__ = [
    "QueryService",
    "QueryOutcome",
    "QueryTicket",
    "ServiceStatistics",
    "StripedLRUCache",
]
