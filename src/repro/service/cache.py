"""Lock-striped LRU caching for the concurrent query service.

:class:`StripedLRUCache` composes N independent
:class:`~repro.engine.engine.PlanCache` shards, each guarded by its own lock.
A key is routed to a shard by hash, so concurrent workers touching different
keys proceed without contending on one global cache lock — the classical
lock-striping pattern.  The class exposes the exact ``get``/``put``/counter
surface of :class:`PlanCache`, so a :class:`~repro.engine.engine.PathQueryEngine`
accepts either interchangeably, and the same structure caches both plans and
materialized query outcomes in :class:`~repro.service.service.QueryService`.

Process-mode caveat: under ``execution_mode="processes"`` / ``"race"`` the
striped caches are **parent-only**.  A forked worker inherits a copy of this
object whose stripe locks may have been *held by some other parent thread*
at the fork instant — acquiring one in the child would deadlock forever, so
worker processes must never touch an inherited striped cache (they run
private, unshared per-process :class:`PlanCache` instances instead, and the
parent dispatchers install worker results into the shared result cache on
their behalf).  This keeps every striped-cache access on the parent side of
the fork, where the locks' owners are live threads.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.engine.engine import PlanCache

__all__ = ["StripedLRUCache"]


class StripedLRUCache:
    """A thread-safe LRU cache built from independently locked shards.

    Args:
        maxsize: Total capacity across all stripes (``0`` disables caching —
            ``put`` becomes a no-op and every ``get`` is a miss).
        stripes: Number of independently locked shards.  Clamped to
            ``maxsize`` so no shard ends up with zero capacity, and to at
            least 1.

    Eviction is LRU *per stripe*: each shard evicts its own least-recently
    used entry when it overflows its slice of the capacity.  Counters
    (``hits`` / ``misses`` / ``evictions``) aggregate across stripes.
    """

    def __init__(self, maxsize: int = 256, stripes: int = 8) -> None:
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.maxsize = max(maxsize, 0)
        num_stripes = max(1, min(stripes, self.maxsize)) if self.maxsize else 1
        base, remainder = divmod(self.maxsize, num_stripes)
        self._shards = [
            PlanCache(base + (1 if index < remainder else 0)) for index in range(num_stripes)
        ]
        self._locks = [threading.Lock() for _ in range(num_stripes)]
        # clear() is not naturally atomic across independently locked stripes
        # (a concurrent put into an already-swept stripe would survive the
        # clear).  The generation counter closes that hole: clear() bumps it
        # before sweeping, and put() re-checks it after inserting — see put().
        self._generation = 0
        self._generation_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Core cache surface (mirrors PlanCache)
    # ------------------------------------------------------------------
    def _index(self, key: Any) -> int:
        return hash(key) % len(self._shards)

    def get(self, key: Any) -> Any | None:
        """Return the cached entry for ``key`` (marking it most-recently used)."""
        index = self._index(key)
        with self._locks[index]:
            return self._shards[index].get(key)

    def put(self, key: Any, entry: Any) -> None:
        """Insert ``entry``, evicting the stripe's LRU entry when it overflows.

        Linearizes correctly against :meth:`clear`: the generation observed
        before the insert is re-checked after it, and the entry is removed
        again if a clear ran in between — so no put that *began before* a
        clear can survive it.  A put that begins after the generation bump
        survives by design (it is linearized after the clear).
        """
        index = self._index(key)
        generation = self._generation
        with self._locks[index]:
            self._shards[index].put(key, entry)
            if self._generation != generation:
                self._shards[index].remove(key)

    def remove(self, key: Any) -> None:
        """Drop one entry if present (no counter changes)."""
        index = self._index(key)
        with self._locks[index]:
            self._shards[index].remove(key)

    def clear(self) -> None:
        """Atomically drop every entry from every stripe (counters are kept).

        Bumps the generation counter *before* sweeping the stripes so
        concurrent :meth:`put` calls that started earlier cannot leak an
        entry past the clear (they detect the bump and undo themselves).
        """
        with self._generation_lock:
            self._generation += 1
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                shard.clear()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Any) -> bool:
        index = self._index(key)
        with self._locks[index]:
            return key in self._shards[index]

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    @property
    def stripes(self) -> int:
        """Number of independently locked shards."""
        return len(self._shards)

    @property
    def hits(self) -> int:
        """Total cache hits across all stripes."""
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        """Total cache misses across all stripes."""
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        """Total LRU evictions across all stripes."""
        return sum(shard.evictions for shard in self._shards)

    def stats(self) -> dict[str, Any]:
        """Return a point-in-time counter summary (entries, hits, misses, evictions).

        ``per_stripe`` breaks the aggregates down by shard, making hotspots
        (one stripe absorbing most of the traffic) and delta-invalidation
        effectiveness observable from :class:`~repro.service.ServiceStatistics`.
        """
        return {
            "entries": len(self),
            "maxsize": self.maxsize,
            "stripes": self.stripes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "per_stripe": [
                {
                    "entries": len(shard),
                    "hits": shard.hits,
                    "misses": shard.misses,
                    "evictions": shard.evictions,
                }
                for shard in self._shards
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StripedLRUCache(maxsize={self.maxsize}, stripes={self.stripes}, "
            f"entries={len(self)})"
        )
