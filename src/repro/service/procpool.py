"""A process-backed worker pool: true multi-core query execution.

CPython's GIL means the thread workers of :class:`~repro.service.QueryService`
provide isolation and overlap but no CPU parallelism — on cache-cold traffic
they are measurably *slower* than a serial loop (``BENCH_service.json``).
:class:`ProcessWorkerPool` breaks that ceiling by executing queries in child
processes:

* **Fork-time copy-on-write sharing.** The property graph is append-only and
  version-pinned, so a forked child shares the parent's graph pages for free
  and answers any query pinned to a version ``<=`` its fork version by
  building a :class:`~repro.graph.snapshot.GraphSnapshot` directly from the
  ``(version, num_nodes, num_edges)`` triple shipped with the task — no graph
  ever crosses a pipe.  Under the ``spawn`` start method (platforms without
  ``fork``) the graph is pickled to each worker once at spawn time; the
  per-task protocol is identical.
* **Spawn-on-version-drift refork.** Workers pinned at fork version *v* can
  serve any task pinned ``<= v``.  When a task arrives pinned to a newer
  version, :meth:`ensure_version` forks a fresh *generation* of workers and
  retires the old one (each retired worker finishes its in-flight task,
  drains a poison pill, and exits).  Read-heavy workloads never refork;
  write-heavy ones pay one fork per drift, not per query.
* **Compact wire protocol.** Tasks are pickled *by the dispatcher* (an
  unpicklable parameter fails that one request instead of poisoning a queue
  feeder thread).  Result paths come back as ``(node_ids, edge_ids)`` tuple
  pairs and are rehydrated against the parent's graph via
  ``Path._unchecked`` — a path object drags its whole graph through pickle,
  the id tuples do not.  :class:`~repro.errors.BudgetExceeded` partial
  progress and errors come back as typed payloads on the same queue.
* **Crash containment.** A worker announces a *claim* (task seq + pid)
  before executing.  The monitor thread watches worker liveness: when a
  worker dies, its claimed-but-unanswered task is requeued once (another
  worker retries it) and on a second death resolved as a typed
  :class:`WorkerDied` outcome; a replacement worker is forked either way.
* **Race dispatch with cross-process cancellation.** :meth:`execute` can
  race materialize vs pipeline in two workers (the portfolio policy of
  :class:`~repro.engine.router.PortfolioRouter`): first complete result
  wins, and the loser is cancelled through the ``cancel`` hook of its
  :class:`~repro.execution.QueryBudget` — the parent writes the losing
  task's seq into the worker's shared-memory cancel slot, and the worker's
  budget checkpoints observe it within one check interval.  Task seqs are
  unique for the pool's lifetime, so a stale slot value can never kill a
  later query.

A note on clocks: task deadlines are *absolute* ``time.monotonic()`` values
stamped in the parent.  ``CLOCK_MONOTONIC`` (and its macOS / Windows
equivalents) is system-wide, not per-process, so a deadline computed in the
parent means the same instant in every worker — queue wait and fork latency
count against the deadline exactly as they do in thread mode.

Known window: a worker that dies *between* dequeuing a task and writing its
claim (a handful of instructions) strands that task — the monitor cannot
attribute an unclaimed task to a dead worker without risking a double
execution on a live one.  Deadlined requests still resolve (the dispatcher
gives up at the deadline); deadline-free ones would wait.  The claim write
is the first statement after the dequeue precisely to keep this window
negligible.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.engine.engine import PathQueryEngine
from repro.errors import BudgetExceeded, ServiceError
from repro.execution import QueryBudget
from repro.graph.compact import CompactGraph
from repro.graph.model import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.paths.path import Path
from repro.paths.pathset import PathSet

__all__ = ["WorkerDied", "RemoteOutcome", "ProcessWorkerPool", "CRASH_QUERY"]

#: Sentinel query text that makes a worker call ``os._exit`` instead of
#: executing — only honored when the pool was built with ``crash_hook=True``
#: (the fault-injection switch of the crash-recovery tests).
CRASH_QUERY = "__procpool_crash__"

#: Exit code of a crash-hook death (distinguishable from a real fault).
_CRASH_EXIT_CODE = 13

#: Reader-queue sentinel that stops the parent's reply-reader thread.
_STOP = ("stop",)


@dataclass(frozen=True)
class WorkerDied:
    """Typed attribution for a query whose worker process died mid-execution.

    Attributes:
        reason: Human-readable cause (exit code / signal of the dead worker).
        pid: OS pid of the worker that died holding the claim (``None`` when
            the death was synthesized, e.g. at pool shutdown).
        requeued: ``True`` when the task was retried on another worker before
            being given up on (it then died *twice*).
    """

    reason: str
    pid: int | None = None
    requeued: bool = False


@dataclass
class RemoteOutcome:
    """What :meth:`ProcessWorkerPool.execute` returns to the dispatcher.

    ``kind`` is one of ``"ok"`` / ``"budget"`` / ``"error"`` /
    ``"worker-died"``; the remaining fields mirror the worker's payload.
    ``paths`` stays in wire encoding (``(node_ids, edge_ids)`` pairs) —
    decode with :func:`decode_paths` against the parent graph.
    """

    kind: str
    paths: list[tuple[tuple[str, ...], tuple[str, ...]]] | None = None
    executor: str = ""
    plan_cache_hit: bool = False
    budget_reason: str = ""
    paths_visited: int = 0
    depth_reached: int = 0
    stopped_at: str = ""
    error: str | None = None
    worker: str = ""
    pid: int | None = None
    worker_died: WorkerDied | None = None
    raced: bool = False
    loser_cancelled: bool = False


def encode_paths(paths) -> list[tuple[tuple[str, ...], tuple[str, ...]]]:
    """Flatten a path iterable to ``(node_ids, edge_ids)`` pairs for the wire."""
    return [(path._nodes, path._edges) for path in paths]


def decode_paths(graph, encoded) -> PathSet:
    """Rehydrate wire-encoded paths against ``graph`` (append-only superset)."""
    return PathSet.from_unique(
        Path._unchecked(graph, nodes, edges) for nodes, edges in encoded
    )


@dataclass
class _Task:
    """One unit of work shipped to a worker (pickled by the dispatcher)."""

    seq: int
    text: str
    params: dict | None
    max_length: int | None
    executor: str
    limit: int | None
    deadline: float | None
    max_visited: int | None
    version: int
    num_nodes: int
    num_edges: int
    cancellable: bool = False


class _Pending:
    """Parent-side bookkeeping for one dispatched task."""

    __slots__ = (
        "task_bytes",
        "event",
        "reply",
        "worker_index",
        "claimed_pid",
        "requeues",
        "on_resolve",
    )

    def __init__(self, task_bytes: bytes, on_resolve=None) -> None:
        self.task_bytes = task_bytes
        self.event = threading.Event()
        self.reply: RemoteOutcome | None = None
        self.worker_index: int | None = None
        self.claimed_pid: int | None = None
        self.requeues = 0
        self.on_resolve = on_resolve


@dataclass
class _Worker:
    index: int
    process: multiprocessing.process.BaseProcess
    cancel_slot: object  # multiprocessing.Value('q')
    generation: int
    state: str = "alive"  # alive | retiring
    reaped: bool = False
    dead_since: float | None = None


@dataclass
class _Generation:
    index: int
    queue: object  # ctx.SimpleQueue
    workers: int = 0


def _worker_main(index, graph, options, task_queue, result_queue, cancel_slot):
    """Worker-process entry point: dequeue, execute, reply — forever.

    The worker builds a private engine over its (forked or unpickled) copy of
    the graph.  It deliberately uses ``invalidation="version"`` so the query
    path never calls ``delta_between`` — that method takes the graph's
    threading lock, and a lock inherited through ``fork`` has undefined
    ownership in the child.  Everything else on the hot path (snapshot reads,
    the cost model, the executors) is lock-free.
    """
    engine = PathQueryEngine(
        graph,
        optimize=options["optimize"],
        default_max_length=options["default_max_length"],
        executor="auto",
        plan_cache_size=options["plan_cache_size"],
        invalidation="version",
    )
    # A pool over a hard-frozen graph ships the CompactGraph itself (flat
    # int arrays: true COW pages under fork, a cheap pickle under spawn).
    # It is immutable and version-pinned, so it *is* the snapshot for every
    # task this worker can ever receive.
    compact_shipped = isinstance(graph, CompactGraph)
    pid = os.getpid()
    worker_name = f"proc-{index}"
    crash_hook = options["crash_hook"]
    while True:
        wire = task_queue.get()
        if wire is None:
            break
        task: _Task = pickle.loads(wire)
        # The claim is the crash-attribution handshake: the parent learns
        # which pid owns which seq *before* any execution can die.
        result_queue.put(("claim", task.seq, index, pid))
        if crash_hook and task.text == CRASH_QUERY:
            os._exit(_CRASH_EXIT_CODE)
        try:
            if compact_shipped:
                snapshot = graph
            else:
                snapshot = GraphSnapshot(graph, task.version, task.num_nodes, task.num_edges)
            budget = None
            if task.deadline is not None or task.max_visited is not None or task.cancellable:
                seq = task.seq
                budget = QueryBudget(
                    deadline=task.deadline,
                    max_visited=task.max_visited,
                    cancel=(
                        (lambda s=seq: cancel_slot.value == s) if task.cancellable else None
                    ),
                )
            result = engine.query(
                task.text,
                max_length=task.max_length,
                executor=task.executor,
                limit=task.limit,
                graph=snapshot,
                budget=budget,
                params=task.params,
            )
            result_queue.put(
                (
                    "ok",
                    task.seq,
                    {
                        "paths": encode_paths(result.paths),
                        "executor": result.executor,
                        "plan_cache_hit": result.cache_hit,
                        "paths_visited": result.statistics.budget_paths_visited,
                        "depth_reached": result.statistics.budget_depth_reached,
                        "worker": worker_name,
                        "pid": pid,
                    },
                )
            )
        except BudgetExceeded as exceeded:
            result_queue.put(
                (
                    "budget",
                    task.seq,
                    {
                        "budget_reason": exceeded.reason,
                        "paths_visited": exceeded.paths_visited,
                        "depth_reached": exceeded.depth_reached,
                        "stopped_at": exceeded.stopped_at,
                        "worker": worker_name,
                        "pid": pid,
                    },
                )
            )
        except BaseException as error:  # the reply IS the error report
            result_queue.put(
                (
                    "error",
                    task.seq,
                    {
                        "error": f"{type(error).__name__}: {error}",
                        "worker": worker_name,
                        "pid": pid,
                    },
                )
            )


class ProcessWorkerPool:
    """A pool of query-executing worker processes over one graph lineage.

    Args:
        graph: The live parent graph.  Workers fork against it (or receive a
            pickled copy under ``spawn``) and serve queries pinned to any
            version at or below their fork version.
        workers: Worker-process count (``>= 1``).
        optimize / default_max_length / plan_cache_size: Forwarded to each
            worker's private engine.
        start_method: ``"fork"`` (default where available), ``"spawn"`` or
            ``"forkserver"``.  Fork is the fast path — copy-on-write graph
            sharing; spawn pays one graph pickle per worker at (re)fork.
        max_requeues: How many times a task claimed by a dying worker is
            retried before resolving as :class:`WorkerDied`.
        crash_hook: Enable the :data:`CRASH_QUERY` fault-injection sentinel
            (tests only).
    """

    #: Monitor poll interval; worker deaths are noticed within ~two ticks.
    _POLL_SECONDS = 0.05
    #: Grace between noticing a death and adjudicating its claims, so claim
    #: messages already written to the result queue are processed first.
    _DEATH_GRACE = 0.15

    def __init__(
        self,
        graph: PropertyGraph,
        workers: int,
        *,
        optimize: bool = True,
        default_max_length: int | None = None,
        plan_cache_size: int = 128,
        start_method: str | None = None,
        max_requeues: int = 1,
        crash_hook: bool = False,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"process pool needs workers >= 1, got {workers}")
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self.graph = graph
        self.workers = workers
        self.max_requeues = max_requeues
        self.crash_hook = crash_hook
        self._options = {
            "optimize": optimize,
            "default_max_length": default_max_length,
            "plan_cache_size": plan_cache_size,
            "crash_hook": crash_hook,
        }
        self._lock = threading.Lock()
        self._spawn_lock = threading.Lock()
        self._result_queue = self._ctx.SimpleQueue()
        self._pending: dict[int, _Pending] = {}
        self._cancelled: set[int] = set()
        self._workers: dict[int, _Worker] = {}
        self._generations: list[_Generation] = []
        self._current: _Generation | None = None
        self._next_seq = 0
        self._next_worker = 0
        self._fork_version = -1
        self._closed = False
        self._dispatched = 0
        self._reforks = 0
        self._deaths = 0
        self._requeued = 0
        self._races = 0
        self._race_wins: dict[str, int] = {}
        self._losers_cancelled = 0
        self._spawn_generation()
        self._reforks = 0  # the initial fork is not a re-fork
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-pool-reader", daemon=True
        )
        self._reader.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-pool-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_generation(self) -> None:
        """Fork a fresh worker generation pinned at the graph's current version."""
        with self._spawn_lock:
            if self._closed:
                return
            # Read the fork version under the graph's write lock so the
            # version is coherent with the published node/edge state.  A
            # mutation landing between this read and the actual fork is
            # harmless: its objects carry versions > the pin of every task
            # this generation will serve, and GraphSnapshot filters them out.
            lock = getattr(self.graph, "_lock", None)
            if lock is not None:
                with lock:
                    version = self.graph.version
            else:
                version = self.graph.version
            generation = _Generation(
                index=len(self._generations), queue=self._ctx.SimpleQueue()
            )
            self._generations.append(generation)
            old = self._current
            for _ in range(self.workers):
                self._spawn_worker(generation)
            with self._lock:
                self._current = generation
                self._fork_version = version
                self._reforks += 1
            if old is not None:
                # Retire the previous generation: each worker finishes its
                # in-flight task (if any), drains one pill, and exits.
                with self._lock:
                    retiring = [
                        w for w in self._workers.values()
                        if w.generation == old.index and w.state == "alive"
                    ]
                    for worker in retiring:
                        worker.state = "retiring"
                for _ in retiring:
                    old.queue.put(None)

    def _ship_graph(self):
        """The graph payload workers receive: the columnar core when possible.

        When the pool's graph is hard-frozen its version can never drift, so
        every task this pool will ever dispatch is pinned at the core's
        version — the flat :class:`~repro.graph.compact.CompactGraph` arrays
        replace the object web entirely (fork COWs them as a few contiguous
        pages; spawn pickles arrays instead of dataclass instances) and the
        workers run the int-encoded closure path.  A mutable graph ships
        as-is: tasks may pin older versions, which needs the
        ``GraphSnapshot`` filtering only the object graph supports.
        """
        graph = self.graph
        if getattr(graph, "frozen", False):
            probe = getattr(graph, "compact_core", None)
            compact = probe() if probe is not None else None
            if compact is None:
                ensure = getattr(graph, "ensure_compact", None)
                if ensure is not None:
                    compact = ensure()
            if compact is not None:
                return compact
        return graph

    def _spawn_worker(self, generation: _Generation) -> _Worker:
        with self._lock:
            index = self._next_worker
            self._next_worker += 1
        cancel_slot = self._ctx.Value("q", -1)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._ship_graph(),
                self._options,
                generation.queue,
                self._result_queue,
                cancel_slot,
            ),
            name=f"repro-pool-worker-{index}",
            daemon=True,
        )
        process.start()
        worker = _Worker(
            index=index,
            process=process,
            cancel_slot=cancel_slot,
            generation=generation.index,
        )
        with self._lock:
            self._workers[index] = worker
            generation.workers += 1
        return worker

    def ensure_version(self, version: int) -> None:
        """Refork when a task is pinned past the current generation's version.

        Cheap no-op on the read-heavy path (one integer compare); the actual
        refork is serialized so concurrent dispatchers drifting past the same
        version fork exactly one new generation.
        """
        if version <= self._fork_version or self._closed:
            return
        with self._spawn_lock:
            if version <= self._fork_version:
                return
        # _spawn_generation re-acquires the lock; the double-check above
        # collapses the thundering herd to a single refork.
        self._spawn_generation()

    # ------------------------------------------------------------------
    # Reply reader
    # ------------------------------------------------------------------
    def _reader_loop(self) -> None:
        while True:
            message = self._result_queue.get()
            if message == _STOP:
                break
            kind = message[0]
            if kind == "claim":
                _, seq, worker_index, pid = message
                with self._lock:
                    pending = self._pending.get(seq)
                    if pending is not None:
                        pending.worker_index = worker_index
                        pending.claimed_pid = pid
                    if seq in self._cancelled:
                        # Cancelled before the claim arrived: deliver the
                        # kill now that we know which slot to write.
                        worker = self._workers.get(worker_index)
                        if worker is not None:
                            worker.cancel_slot.value = seq
                continue
            _, seq, payload = message
            reply = RemoteOutcome(kind=kind, **payload)
            self._resolve(seq, reply)

    def _resolve(self, seq: int, reply: RemoteOutcome) -> None:
        with self._lock:
            pending = self._pending.pop(seq, None)
            self._cancelled.discard(seq)
        if pending is None:
            return  # cancelled race loser whose reply nobody waits for
        pending.reply = reply
        pending.event.set()
        if pending.on_resolve is not None:
            pending.on_resolve()

    # ------------------------------------------------------------------
    # Death watch
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(self._POLL_SECONDS)
            now = time.monotonic()
            due: list[_Worker] = []
            with self._lock:
                for worker in self._workers.values():
                    if worker.reaped or worker.process.is_alive():
                        continue
                    if worker.dead_since is None:
                        worker.dead_since = now
                    elif now - worker.dead_since >= self._DEATH_GRACE:
                        worker.reaped = True
                        due.append(worker)
            for worker in due:
                self._handle_dead_worker(worker)

    def _handle_dead_worker(self, worker: _Worker) -> None:
        worker.process.join(timeout=0.1)
        exitcode = worker.process.exitcode
        with self._lock:
            self._workers.pop(worker.index, None)
            claimed = [
                (seq, pending)
                for seq, pending in self._pending.items()
                if pending.worker_index == worker.index and pending.reply is None
            ]
            clean_retirement = worker.state == "retiring" and not claimed
            current = self._current
        if clean_retirement or self._closed:
            return
        self._deaths += 1
        reason = f"worker process exited with code {exitcode}"
        for seq, pending in claimed:
            cancelled = seq in self._cancelled
            if pending.requeues < self.max_requeues and not cancelled:
                with self._lock:
                    pending.requeues += 1
                    pending.worker_index = None
                    pending.claimed_pid = None
                    self._requeued += 1
                current.queue.put(pending.task_bytes)
            else:
                self._resolve(
                    seq,
                    RemoteOutcome(
                        kind="worker-died",
                        worker_died=WorkerDied(
                            reason=reason,
                            pid=worker.claimed_pid if cancelled else pending.claimed_pid,
                        )
                        if pending.requeues == 0
                        else WorkerDied(reason=reason, pid=pending.claimed_pid, requeued=True),
                        error=reason,
                        pid=worker.process.pid,
                    ),
                )
        if worker.state == "alive":
            # Keep capacity: a replacement joins the current generation (its
            # fork version is >= every version old tasks are pinned to, so it
            # can serve requeued work immediately).
            self._spawn_worker(current)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(
        self,
        *,
        text: str,
        params: dict | None,
        max_length: int | None,
        executors: tuple[str, ...],
        limit: int | None,
        deadline: float | None,
        max_visited: int | None,
        version: int,
        num_nodes: int,
        num_edges: int,
        race: bool = False,
    ) -> RemoteOutcome:
        """Run one query in the pool; blocks until its reply (or death) arrives.

        With ``race=True`` every executor in ``executors`` runs concurrently
        in its own worker: the first ``"ok"`` reply wins, the others are
        cancelled through their shared-memory budget hooks.  Without it only
        ``executors[0]`` runs.
        """
        if self._closed:
            raise ServiceError("process pool is closed")
        if not race or len(executors) < 2:
            pending, seq = self._dispatch(
                text, params, max_length, executors[0], limit, deadline,
                max_visited, version, num_nodes, num_edges, cancellable=False,
            )
            return self._await(pending, seq, deadline)
        any_done = threading.Event()
        entries = [
            self._dispatch(
                text, params, max_length, executor, limit, deadline,
                max_visited, version, num_nodes, num_edges,
                cancellable=True, on_resolve=any_done.set,
            )
            for executor in executors
        ]
        with self._lock:
            self._races += 1
        winner: RemoteOutcome | None = None
        losers: list[RemoteOutcome] = []
        remaining = {seq: pending for pending, seq in entries}
        while remaining and winner is None:
            if not self._wait_any(any_done, deadline):
                break
            any_done.clear()
            for seq in list(remaining):
                reply = remaining[seq].reply
                if reply is None:
                    continue
                del remaining[seq]
                if reply.kind == "ok" and winner is None:
                    winner = reply
                else:
                    losers.append(reply)
        if winner is not None:
            cancelled = bool(remaining)
            for seq in remaining:
                self._cancel(seq)
            winner.raced = True
            winner.loser_cancelled = cancelled
            with self._lock:
                self._race_wins[winner.executor] = (
                    self._race_wins.get(winner.executor, 0) + 1
                )
                if cancelled:
                    self._losers_cancelled += 1
            return winner
        # No branch produced a result: wait the stragglers out (they carry
        # the same deadline, so this converges), then report the best loss.
        for seq, pending in remaining.items():
            reply = self._await(pending, seq, deadline)
            losers.append(reply)
        priority = {"budget": 0, "error": 1, "worker-died": 2}
        best = min(losers, key=lambda reply: priority.get(reply.kind, 3))
        best.raced = True
        return best

    def _dispatch(
        self,
        text, params, max_length, executor, limit, deadline, max_visited,
        version, num_nodes, num_edges, *, cancellable, on_resolve=None,
    ) -> tuple[_Pending, int]:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._dispatched += 1
            current = self._current
        task = _Task(
            seq=seq, text=text, params=params, max_length=max_length,
            executor=executor, limit=limit, deadline=deadline,
            max_visited=max_visited, version=version, num_nodes=num_nodes,
            num_edges=num_edges, cancellable=cancellable,
        )
        # Pickle here, in the dispatcher, so an unpicklable parameter raises
        # into this request's error path instead of wedging a queue.
        task_bytes = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        pending = _Pending(task_bytes, on_resolve=on_resolve)
        with self._lock:
            self._pending[seq] = pending
        current.queue.put(task_bytes)
        return pending, seq

    def _await(self, pending: _Pending, seq: int, deadline: float | None) -> RemoteOutcome:
        """Block on one pending reply; synthesize an outcome if the pool dies."""
        while not pending.event.wait(timeout=0.1):
            if self._closed:
                with self._lock:
                    self._pending.pop(seq, None)
                return RemoteOutcome(
                    kind="worker-died",
                    worker_died=WorkerDied(reason="pool shut down mid-query"),
                    error="pool shut down mid-query",
                )
            if deadline is not None and time.monotonic() >= deadline + 1.0:
                # Safety net for the unclaimed-task window: the worker-side
                # budget should have killed this long ago.
                with self._lock:
                    self._pending.pop(seq, None)
                self._cancel(seq)
                return RemoteOutcome(
                    kind="budget", budget_reason="deadline", stopped_at="pool",
                )
        assert pending.reply is not None
        return pending.reply

    def _wait_any(self, any_done: threading.Event, deadline: float | None) -> bool:
        while not any_done.wait(timeout=0.1):
            if self._closed:
                return False
            if deadline is not None and time.monotonic() >= deadline + 1.0:
                return False
        return True

    def _cancel(self, seq: int) -> None:
        """Cancel a dispatched task: pre-claim tombstone or post-claim slot write."""
        with self._lock:
            self._cancelled.add(seq)
            pending = self._pending.get(seq)
            if pending is not None and pending.worker_index is not None:
                worker = self._workers.get(pending.worker_index)
                if worker is not None:
                    worker.cancel_slot.value = seq

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Point-in-time pool counters (merged into ``ServiceStatistics``)."""
        with self._lock:
            alive = sum(
                1 for worker in self._workers.values() if worker.state == "alive"
            )
            return {
                "start_method": self.start_method,
                "workers": self.workers,
                "workers_alive": alive,
                "generation": self._current.index if self._current else -1,
                "fork_version": self._fork_version,
                "dispatched": self._dispatched,
                "reforks": self._reforks,
                "worker_deaths": self._deaths,
                "requeued": self._requeued,
                "races": self._races,
                "race_wins": dict(self._race_wins),
                "losers_cancelled": self._losers_cancelled,
            }

    def close(self, deadline: float = 5.0) -> None:
        """Shut the pool down within ``deadline`` seconds; idempotent.

        Live workers get poison pills and are joined; whoever is still
        running when the deadline expires is terminated (their in-flight
        queries resolve as :class:`WorkerDied`).  The reader and monitor
        threads are always joined — no thread outlives the pool.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            workers = list(self._workers.values())
            generations = list(self._generations)
        pills_needed: dict[int, int] = {}
        for worker in workers:
            if worker.process.is_alive():
                pills_needed[worker.generation] = pills_needed.get(worker.generation, 0) + 1
        for generation in generations:
            for _ in range(pills_needed.get(generation.index, 0)):
                generation.queue.put(None)
        give_up_at = time.monotonic() + deadline
        for worker in workers:
            worker.process.join(timeout=max(0.0, give_up_at - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._result_queue.put(_STOP)
        self._reader.join(timeout=2.0)
        self._monitor.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for _seq, pending in leftovers:
            pending.reply = RemoteOutcome(
                kind="worker-died",
                worker_died=WorkerDied(reason="pool shut down mid-query"),
                error="pool shut down mid-query",
            )
            pending.event.set()
            if pending.on_resolve is not None:
                pending.on_resolve()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessWorkerPool(workers={self.workers}, start={self.start_method!r}, "
            f"fork_version={self._fork_version}, dispatched={self._dispatched})"
        )
