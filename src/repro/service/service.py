"""A thread-safe concurrent query service with snapshot isolation.

:class:`QueryService` wraps :class:`~repro.engine.engine.PathQueryEngine` for
serving workloads where queries and graph mutations interleave:

* **Snapshot isolation** — every submitted query is pinned at submission time
  to an immutable :class:`~repro.graph.snapshot.GraphSnapshot` of the service
  graph, so an in-flight query never observes a partially applied batch of
  mutations, and the version it ran against is reported in its outcome.
* **Batched submission** — :meth:`submit` / :meth:`submit_many` enqueue
  requests onto a *bounded* queue drained by a pool of worker threads; each
  request may carry a deadline and resource caps, enforced cooperatively both
  at dequeue and *in flight*: the worker derives a
  :class:`~repro.execution.QueryBudget` from the request's absolute deadline
  and threads it through the engine, so a runaway recursion dies within one
  budget-check interval instead of occupying the worker past its deadline.
  :meth:`QueryTicket.result` delivers the outcome (a future-like handoff),
  and :meth:`run_batch` is the synchronous convenience wrapper.
* **Shared caches** — all workers share one lock-striped
  :class:`~repro.service.cache.StripedLRUCache` of parsed-and-optimized plans
  (keyed on query text, options *and* graph version, so a plan is never
  served across a version bump) and one striped *result cache* of
  materialized outcomes keyed the same way.  On repeat-heavy ("cache-hot")
  read-only workloads the result cache collapses duplicate requests into one
  evaluation per graph version.

A note on parallelism: CPython's GIL serializes the pure-Python evaluation
work, so the default *thread* worker pool provides isolation and overlap
(queries keep draining while a producer thread mutates or blocks), not CPU
parallelism — its throughput wins on cache-hot workloads
(``BENCH_service.json``) come from version-keyed result reuse.  For real
multi-core evaluation, ``execution_mode="processes"`` (or ``"race"``) backs
the dispatchers with a :class:`~repro.service.procpool.ProcessWorkerPool`
of forked worker processes; see that module and PERFORMANCE.md.

A note on clocks: every timestamp in this module — enqueue stamps, absolute
deadlines, elapsed measurements — comes from ``time.monotonic()``.  Deadline
math only works when the stamp being compared and the clock being read share
an epoch; ``perf_counter`` is not guaranteed to share one with ``monotonic``,
and wall clocks can jump, so one monotonic clock is used for everything.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.engine.engine import INVALIDATION_MODES, PathQueryEngine
from repro.engine.executor import EXECUTOR_NAMES
from repro.engine.router import EXECUTION_MODES, PortfolioRouter, RouteDecision
from repro.errors import BudgetExceeded, ServiceError, ServiceOverloadedError
from repro.execution import QueryBudget
from repro.graph.compact import AutoCompactPolicy
from repro.graph.delta import QueryFootprint
from repro.graph.model import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.paths.pathset import PathSet
from repro.service.cache import StripedLRUCache
from repro.service.latency import LatencyHistogram
from repro.service.procpool import (
    CRASH_QUERY,
    ProcessWorkerPool,
    WorkerDied,
    decode_paths,
)

__all__ = ["QueryOutcome", "QueryTicket", "ServiceStatistics", "QueryService"]

#: Queue sentinel that tells a worker thread to exit.
_SHUTDOWN = object()


def _params_tuple(params: Mapping[str, Any] | None) -> tuple | None:
    """Canonicalize parameter bindings for cache keys and outcomes.

    Returns a sorted ``(name, value)`` tuple — the hashable identity of a
    binding set — or ``None`` when a value is unhashable, in which case the
    result cache is bypassed for the request (correctness over reuse).
    """
    if not params:
        return ()
    items = tuple(sorted(params.items()))
    try:
        hash(items)
    except TypeError:
        return None
    return items


@dataclass(frozen=True)
class QueryOutcome:
    """The outcome of one query served by :class:`QueryService`.

    Attributes:
        text: The query text as submitted.
        params: The parameter bindings as a sorted ``(name, value)`` tuple
            (empty for unparameterized submissions).
        version: The graph version the query was pinned to at submission.
        paths: The result paths (``None`` on error or timeout).
        error: Error message when the query failed; ``None`` on success.
        timed_out: ``True`` when the query was killed by its budget — either
            the deadline expired before a worker could start executing it
            (``stopped_at == "queue"``) or the in-flight execution was
            cancelled cooperatively mid-evaluation.
        budget_reason: Which budget dimension killed the query
            (``"deadline"``, ``"max_visited"`` or ``"max_results"``; empty
            when the query was not budget-killed).
        paths_visited: Paths visited as accounted by the request's budget:
            partial progress when the query was killed, total visited work
            when a budgeted query completed, zero when no budget was
            attached or the query never started (use ``timed_out`` /
            ``budget_reason`` to tell kills apart, not this counter).
        depth_reached: Deepest fix-point round or traversal depth reached
            (same accounting caveats as ``paths_visited``).
        stopped_at: Operator or loop that observed the kill (``"queue"`` when
            the deadline had already expired at dequeue).
        executor: Name of the executor that ran the plan (empty on failure).
        plan_cache_hit: Whether the parsed plan came from the shared plan cache.
        result_cache_hit: Whether the whole outcome was served from the
            result cache (no evaluation happened for this request).
        elapsed_seconds: Wall-clock execution time for this request (near
            zero on a result-cache hit; excludes queue wait).
        queued_seconds: Time the request spent waiting in the submission
            queue before a worker picked it up.
        worker: Name of the worker that served the request (a worker
            *process* name like ``proc-3`` under the process-backed modes).
        route: How the request was dispatched under a process-backed
            execution mode: ``"single"`` (one executor, chosen by the cost
            model or forced by the caller) or ``"race"`` (both executors ran
            in separate processes and this outcome is the winner — its
            ``executor`` field is the per-query winner attribution).  Empty
            in thread mode and on cache hits.
        worker_died: Typed attribution when the worker process executing the
            query died and the task could not be salvaged by a requeue
            (``None`` otherwise).  Such outcomes also carry ``error``.
    """

    text: str
    version: int
    paths: PathSet | None = None
    params: tuple = ()
    error: str | None = None
    timed_out: bool = False
    budget_reason: str = ""
    paths_visited: int = 0
    depth_reached: int = 0
    stopped_at: str = ""
    executor: str = ""
    plan_cache_hit: bool = False
    result_cache_hit: bool = False
    elapsed_seconds: float = 0.0
    queued_seconds: float = 0.0
    worker: str = ""
    route: str = ""
    worker_died: WorkerDied | None = None

    @property
    def ok(self) -> bool:
        """``True`` when the query produced a result set."""
        return self.paths is not None

    def __len__(self) -> int:
        return len(self.paths) if self.paths is not None else 0

    def path_strings(self) -> tuple[str, ...]:
        """The result paths rendered in canonical (sorted) order."""
        if self.paths is None:
            return ()
        return tuple(str(path) for path in self.paths.sorted())

    def rendered(self) -> str:
        """A canonical one-path-per-line rendering (stable across executors).

        Two outcomes computed from the same query against the same graph
        version are byte-identical under this rendering — the parity contract
        the service test suite locks down.
        """
        return "\n".join(self.path_strings())


class QueryTicket:
    """A future-like handle to one submitted query."""

    __slots__ = ("_event", "_outcome")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcome: QueryOutcome | None = None

    def done(self) -> bool:
        """``True`` once the outcome is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryOutcome:
        """Block until the outcome is available and return it.

        Raises:
            TimeoutError: if the outcome is not available within ``timeout``
                seconds (the query itself keeps running; call again later).
        """
        if not self._event.wait(timeout):
            raise TimeoutError("query outcome not available yet")
        assert self._outcome is not None
        return self._outcome

    def _resolve(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._event.set()


@dataclass(frozen=True)
class _CachedResult:
    """A result-cache entry: the outcome plus the footprint that validates it.

    Under delta invalidation the cache key carries no version; the entry
    remembers the version the outcome was computed at (inside the outcome)
    and the executed plan's footprint, and a lookup at a different version
    serves the entry only when the graph delta between the two versions is
    disjoint from the footprint.
    """

    outcome: QueryOutcome
    footprint: QueryFootprint | None = None


@dataclass(frozen=True)
class _Request:
    """One enqueued unit of work (internal)."""

    text: str
    max_length: int | None
    executor: str | None
    limit: int | None
    deadline: float | None  # absolute time.monotonic() value
    max_visited: int | None
    enqueued_at: float  # time.monotonic() stamp taken at submission
    snapshot: GraphSnapshot
    ticket: QueryTicket
    params: dict[str, Any] | None = None


@dataclass
class ServiceStatistics:
    """Point-in-time counters of a :class:`QueryService`.

    ``timed_out`` splits into ``timed_out_at_dequeue`` (the deadline had
    already passed when a worker picked the request up — pure queue-wait
    starvation) and ``timed_out_in_flight`` (the execution started and was
    killed cooperatively by its budget), so capacity problems and runaway
    queries are distinguishable.  ``queued_seconds_total`` /
    ``queued_seconds_max`` aggregate queue wait across all completed
    requests.

    Delta-invalidation effectiveness is observable through
    ``result_cache_cross_version_hits`` (entries computed at one version and
    proven still valid at another — reuse whole-version invalidation would
    have thrown away) and ``result_cache_delta_rejected`` (entries found but
    discarded because the delta intersected their footprint, or the delta
    window had expired).  Both stay zero under ``invalidation="version"``.
    The per-cache dicts carry a ``per_stripe`` breakdown from
    :meth:`~repro.service.cache.StripedLRUCache.stats`.

    Process-backed execution adds its own attribution: ``worker_died``
    counts queries lost to a worker-process death (deliberately *not* folded
    into ``failed`` or ``timed_out`` — a dead worker is a serving-infrastructure
    fault, not a query fault), ``requeued`` counts tasks salvaged onto
    another worker after a death, ``reforks`` counts version-drift worker
    regenerations, and ``races`` / ``race_wins`` attribute portfolio racing
    (wins keyed by executor name).  ``pool`` carries the raw
    :meth:`~repro.service.procpool.ProcessWorkerPool.statistics` dict.  All
    stay zero / empty in thread mode.
    """

    backend: str = "thread"
    workers: int = 0
    invalidation: str = "delta"
    execution_mode: str = "threads"
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    timed_out_at_dequeue: int = 0
    timed_out_in_flight: int = 0
    executed: int = 0
    result_cache_served: int = 0
    result_cache_cross_version_hits: int = 0
    result_cache_delta_rejected: int = 0
    queued_seconds_total: float = 0.0
    queued_seconds_max: float = 0.0
    worker_died: int = 0
    requeued: int = 0
    reforks: int = 0
    races: int = 0
    race_wins: dict[str, int] = field(default_factory=dict)
    plan_cache: dict[str, Any] = field(default_factory=dict)
    result_cache: dict[str, Any] = field(default_factory=dict)
    pool: dict[str, Any] = field(default_factory=dict)
    #: Per-dimension latency histograms as :meth:`LatencyHistogram.summary`
    #: dicts — ``"query_seconds"`` (execution latency, queue wait excluded)
    #: and ``"queue_wait_seconds"`` (submission-to-dequeue wait).  Each dict
    #: carries ``count``/``mean``/``max`` and ``p50``/``p95``/``p99``
    #: percentiles plus the raw bucket counts the percentiles derive from;
    #: :meth:`merge` folds the buckets and *recomputes* the percentiles, so
    #: merged tail latencies stay exact over the union.
    latency: dict[str, Any] = field(default_factory=dict)

    def merge(self, other: "ServiceStatistics") -> "ServiceStatistics":
        """Aggregate two statistics snapshots into one (cross-process safe).

        Built for fleets: a coordinator collecting ``statistics()`` from
        several service instances (possibly pickled across process
        boundaries) folds them pairwise.  Counters add, maxima take the max,
        nested cache/pool dicts merge numerically key-by-key, and identity
        strings that differ are joined with ``+`` so a heterogeneous merge
        is visible instead of silently mislabeled.
        """

        def tag(mine: str, theirs: str) -> str:
            return mine if mine == theirs else f"{mine}+{theirs}"

        def merge_dicts(mine: dict, theirs: dict) -> dict:
            merged = dict(mine)
            for key, value in theirs.items():
                current = merged.get(key)
                if isinstance(value, bool) or isinstance(current, bool):
                    merged[key] = value
                elif isinstance(value, (int, float)) and isinstance(current, (int, float)):
                    merged[key] = current + value
                elif isinstance(value, dict) and isinstance(current, dict):
                    merged[key] = merge_dicts(current, value)
                elif key not in merged:
                    merged[key] = value
            return merged

        def merge_latency(mine: dict, theirs: dict) -> dict:
            merged = {}
            for key in sorted(set(mine) | set(theirs)):
                a, b = mine.get(key), theirs.get(key)
                if a and b:
                    merged[key] = LatencyHistogram.merge_summaries(a, b)
                else:
                    merged[key] = dict(a or b or {})
            return merged

        return ServiceStatistics(
            backend=tag(self.backend, other.backend),
            workers=self.workers + other.workers,
            invalidation=tag(self.invalidation, other.invalidation),
            execution_mode=tag(self.execution_mode, other.execution_mode),
            submitted=self.submitted + other.submitted,
            rejected=self.rejected + other.rejected,
            completed=self.completed + other.completed,
            failed=self.failed + other.failed,
            timed_out=self.timed_out + other.timed_out,
            timed_out_at_dequeue=self.timed_out_at_dequeue + other.timed_out_at_dequeue,
            timed_out_in_flight=self.timed_out_in_flight + other.timed_out_in_flight,
            executed=self.executed + other.executed,
            result_cache_served=self.result_cache_served + other.result_cache_served,
            result_cache_cross_version_hits=(
                self.result_cache_cross_version_hits + other.result_cache_cross_version_hits
            ),
            result_cache_delta_rejected=(
                self.result_cache_delta_rejected + other.result_cache_delta_rejected
            ),
            queued_seconds_total=self.queued_seconds_total + other.queued_seconds_total,
            queued_seconds_max=max(self.queued_seconds_max, other.queued_seconds_max),
            worker_died=self.worker_died + other.worker_died,
            requeued=self.requeued + other.requeued,
            reforks=self.reforks + other.reforks,
            races=self.races + other.races,
            race_wins=merge_dicts(self.race_wins, other.race_wins),
            plan_cache=merge_dicts(self.plan_cache, other.plan_cache),
            result_cache=merge_dicts(self.result_cache, other.result_cache),
            pool=merge_dicts(self.pool, other.pool),
            latency=merge_latency(self.latency, other.latency),
        )


class QueryService:
    """Serve extended-GQL queries concurrently over a mutating property graph.

    Args:
        graph: The live graph to serve; submissions snapshot it (mutations
            through :meth:`PropertyGraph.add_node` / ``add_edge`` remain the
            caller's job and are safe to interleave with queries).
        workers: Worker-thread count.  ``0`` executes every submission inline
            on the calling thread (the serial mode used as the benchmark
            baseline) while keeping the full snapshot/caching semantics.
        plan_cache_size: Total capacity of the shared lock-striped plan cache
            (ignored when ``plan_cache`` is given).
        plan_cache: An externally owned plan cache to share instead of
            building a private one — how :class:`repro.api.Database` lets its
            direct sessions and its service populate one cache.  Must be
            thread-safe for ``workers > 0`` (a
            :class:`~repro.service.cache.StripedLRUCache`).
        result_cache_size: Total capacity of the shared result cache
            (``0`` disables result reuse entirely).
        cache_stripes: Lock stripes for both shared caches.
        executor: Default executor knob forwarded to the engines.
        optimize: Whether worker engines run the rewrite optimizer.
        default_max_length: Engine-level bound for unbounded ϕWalk recursion.
        default_deadline: Default per-query deadline in seconds (``None`` —
            no deadline).  Deadlines are enforced both at dequeue (an expired
            request is answered with a ``timed_out`` outcome without being
            executed) and *in flight*: the worker derives a
            :class:`~repro.execution.QueryBudget` from the absolute deadline
            and the engine cancels the execution cooperatively at the next
            budget checkpoint after it passes.
        default_max_visited: Default cap on paths visited per query
            (``None`` — unlimited); per-call ``max_visited`` overrides it.
        max_pending: Bound of the submission queue; :meth:`submit` blocks
            once this many requests are waiting (back-pressure).
        invalidation: Cache maintenance policy shared by the plan and result
            caches.  ``"delta"`` (default) keys entries without the graph
            version and serves an entry across versions when the
            :class:`~repro.graph.delta.GraphDelta` between them is disjoint
            from the entry's recorded query footprint — a write only costs
            the cache entries it can actually affect.  ``"version"`` restores
            the legacy whole-version keying where every write misses every
            entry (kept for comparison benchmarks and for exact hit/miss
            accounting).
        execution_mode: Where query evaluation happens.  ``"threads"``
            (default) keeps the legacy in-process worker threads —
            GIL-bound, isolation without CPU parallelism.  ``"processes"``
            backs the same dispatcher threads with a
            :class:`~repro.service.procpool.ProcessWorkerPool`: each query
            runs in a forked worker process with a cost-model-guided single
            executor, so evaluation runs truly in parallel on a multi-core
            host.  ``"race"`` additionally races materialize vs pipeline —
            plus the product automaton on natively-supported SHORTEST
            plans — in separate processes for ``auto`` queries, keeps the
            first result and cancels the losers through their budgets.  The shared plan and
            result caches stay in the parent in every mode: dispatchers warm
            the plan cache via ``prepare`` and install worker results into
            the result cache, so delta/footprint invalidation semantics are
            identical across modes.  Process modes require ``workers >= 1``.
        race_band: Only race when the cost model's recursive-cost fraction
            falls within this half-width of the decision threshold (the
            cost model's "coin flip" zone); ``None`` races every ``auto``
            query.  Ignored outside ``"race"`` mode.
        pool_options: Advanced/testing knobs forwarded verbatim to
            :class:`~repro.service.procpool.ProcessWorkerPool`
            (``start_method``, ``max_requeues``, ``crash_hook``,
            ``plan_cache_size`` for the workers' private plan caches).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        workers: int = 4,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        cache_stripes: int = 8,
        executor: str = "auto",
        optimize: bool = True,
        default_max_length: int | None = None,
        default_deadline: float | None = None,
        default_max_visited: int | None = None,
        max_pending: int = 1024,
        plan_cache: StripedLRUCache | None = None,
        invalidation: str = "delta",
        execution_mode: str = "threads",
        race_band: float | None = None,
        pool_options: dict[str, Any] | None = None,
        auto_compact: bool = True,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if executor not in EXECUTOR_NAMES:
            raise ServiceError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if invalidation not in INVALIDATION_MODES:
            raise ServiceError(
                f"unknown invalidation {invalidation!r}; expected one of "
                f"{', '.join(INVALIDATION_MODES)}"
            )
        if execution_mode not in EXECUTION_MODES:
            raise ServiceError(
                f"unknown execution_mode {execution_mode!r}; expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        if execution_mode != "threads" and workers < 1:
            raise ServiceError(
                f"execution_mode={execution_mode!r} needs workers >= 1 "
                "(inline mode has no processes to dispatch to)"
            )
        self.graph = graph
        self.workers = workers
        self.execution_mode = execution_mode
        # Auto-freeze on read: submissions that pin their own snapshot (no
        # caller-provided one) observe the graph; two consecutive quiescent
        # observations build the columnar core, any mutation thaws it.
        self.auto_compact = auto_compact
        self._compact_policy = AutoCompactPolicy()
        self.invalidation = invalidation
        self.default_executor = executor
        self.default_deadline = default_deadline
        self.default_max_visited = default_max_visited
        self.max_pending = max_pending
        self.plan_cache = (
            plan_cache if plan_cache is not None else StripedLRUCache(plan_cache_size, cache_stripes)
        )
        self.result_cache = StripedLRUCache(result_cache_size, cache_stripes)
        self._engines = [
            PathQueryEngine(
                graph,
                optimize=optimize,
                default_max_length=default_max_length,
                executor=executor,
                plan_cache=self.plan_cache,
                invalidation=invalidation,
            )
            for _ in range(max(workers, 1))
        ]
        self._pool: ProcessWorkerPool | None = None
        self._router: PortfolioRouter | None = None
        if execution_mode != "threads":
            self._router = PortfolioRouter(race_band=race_band)
            options = dict(pool_options or {})
            options.setdefault("plan_cache_size", plan_cache_size)
            # A race needs two processes; otherwise pool capacity == the
            # dispatcher thread count, so every dispatcher can keep exactly
            # one worker process busy.
            pool_workers = max(workers, 2) if execution_mode == "race" else workers
            self._pool = ProcessWorkerPool(
                graph,
                pool_workers,
                optimize=optimize,
                default_max_length=default_max_length,
                **options,
            )
        self._stats_lock = threading.Lock()
        # Serializes the closed-check + enqueue in submit() against close():
        # without it a submission could land behind the shutdown sentinels
        # and its ticket would never resolve.
        self._submit_lock = threading.Lock()
        # workers=0 runs submissions on one shared engine; concurrent inline
        # submitters must not race on its unsynchronized per-version memos.
        self._inline_lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._timed_out = 0
        self._timed_out_at_dequeue = 0
        self._timed_out_in_flight = 0
        self._worker_died = 0
        self._executed = 0
        self._result_cache_served = 0
        self._cross_version_hits = 0
        self._delta_rejected = 0
        self._queued_seconds_total = 0.0
        self._queued_seconds_max = 0.0
        self._latency = LatencyHistogram()
        self._queue_wait = LatencyHistogram()
        self._closed = False
        self._queue: queue_module.Queue | None = None
        self._threads: list[threading.Thread] = []
        if workers:
            self._queue = queue_module.Queue(maxsize=max_pending)
            for index in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(f"worker-{index}", self._engines[index]),
                    name=f"repro-query-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def _build_request(
        self,
        text: str,
        max_length: int | None,
        executor: str | None,
        limit: int | None,
        deadline: float | None,
        max_visited: int | None,
        params: Mapping[str, Any] | None,
        snapshot: GraphSnapshot | None,
    ) -> _Request:
        """Stamp and pin one request (caller holds ``_submit_lock``)."""
        relative = deadline if deadline is not None else self.default_deadline
        if snapshot is None and self.auto_compact:
            self._compact_policy.observe(self.graph)
        now = time.monotonic()
        return _Request(
            text=text,
            max_length=max_length,
            executor=executor,
            limit=limit,
            deadline=(now + relative) if relative is not None else None,
            max_visited=(
                max_visited if max_visited is not None else self.default_max_visited
            ),
            enqueued_at=now,
            snapshot=snapshot if snapshot is not None else self.graph.snapshot(),
            ticket=QueryTicket(),
            params=dict(params) if params else None,
        )

    def submit(
        self,
        text: str,
        max_length: int | None = None,
        executor: str | None = None,
        limit: int | None = None,
        deadline: float | None = None,
        max_visited: int | None = None,
        params: Mapping[str, Any] | None = None,
        snapshot: GraphSnapshot | None = None,
    ) -> QueryTicket:
        """Enqueue one query and return its :class:`QueryTicket`.

        The query is pinned to a snapshot of the graph *now*, at submission —
        mutations that commit while it waits in the queue are invisible to
        it.  Blocks when the submission queue is full (back-pressure).

        ``deadline`` is relative (seconds from now); it is converted to an
        absolute monotonic instant at submission, so queue wait counts
        against it.  ``max_visited`` caps the paths the execution may visit.
        ``params`` binds the query's ``$name`` placeholders; the shared plan
        cache is keyed on the parameterized text (all bindings share one
        plan) while the result cache is keyed on text *and* bindings, so two
        bindings can never serve each other's results.

        ``snapshot`` overrides the pin: pass an existing
        :class:`~repro.graph.snapshot.GraphSnapshot` (e.g. a long-lived
        session's) to evaluate at *that* version instead of the current one —
        how the network front-end keeps every query of a connection on the
        connection's pinned version.  The graph is append-only, so any worker
        can serve any past version.
        """
        with self._submit_lock:
            if self._closed:
                raise ServiceError("service is closed; no further submissions accepted")
            request = self._build_request(
                text, max_length, executor, limit, deadline, max_visited, params, snapshot
            )
            if self._queue is not None:
                # Bounded wait so a full queue cannot wedge the service:
                # close() flips _closed without taking _submit_lock, so a
                # blocked producer notices within one tick and aborts
                # instead of holding the lock (and close()) hostage.
                while True:
                    try:
                        self._queue.put(request, timeout=0.05)
                        break
                    except queue_module.Full:
                        if self._closed:
                            raise ServiceError(
                                "service closed while waiting for queue space"
                            ) from None
            with self._stats_lock:
                self._submitted += 1
        if self._queue is None:
            with self._inline_lock:
                self._serve(request, self._engines[0], "inline")
        return request.ticket

    def try_submit(
        self,
        text: str,
        max_length: int | None = None,
        executor: str | None = None,
        limit: int | None = None,
        deadline: float | None = None,
        max_visited: int | None = None,
        params: Mapping[str, Any] | None = None,
        snapshot: GraphSnapshot | None = None,
    ) -> QueryTicket:
        """Non-blocking :meth:`submit`: reject instead of waiting for queue space.

        The admission-control variant used by the network front-end.  When
        the bounded submission queue is full, :meth:`submit` applies
        back-pressure by blocking the producer; a network server cannot
        block its event loop on a slow consumer, so this method raises a
        typed :class:`~repro.errors.ServiceOverloadedError` instead (the
        429-shaped signal: nothing was enqueued, retry after backoff).
        Accepted submissions behave exactly like :meth:`submit`.
        """
        with self._submit_lock:
            if self._closed:
                raise ServiceError("service is closed; no further submissions accepted")
            request = self._build_request(
                text, max_length, executor, limit, deadline, max_visited, params, snapshot
            )
            if self._queue is not None:
                try:
                    self._queue.put_nowait(request)
                except queue_module.Full:
                    with self._stats_lock:
                        self._rejected += 1
                    raise ServiceOverloadedError(
                        "submission queue is full",
                        pending=self._queue.qsize(),
                        capacity=self.max_pending,
                    ) from None
            with self._stats_lock:
                self._submitted += 1
        if self._queue is None:
            with self._inline_lock:
                self._serve(request, self._engines[0], "inline")
        return request.ticket

    def submit_many(self, texts: list[str] | tuple[str, ...], **options) -> list[QueryTicket]:
        """Submit a batch of query texts; returns one ticket per query, in order."""
        return [self.submit(text, **options) for text in texts]

    def run_batch(self, texts: list[str] | tuple[str, ...], **options) -> list[QueryOutcome]:
        """Submit a batch and block until every outcome is available."""
        tickets = self.submit_many(texts, **options)
        return [ticket.result() for ticket in tickets]

    # ------------------------------------------------------------------
    # Worker machinery
    # ------------------------------------------------------------------
    def _worker_loop(self, name: str, engine: PathQueryEngine) -> None:
        assert self._queue is not None
        while True:
            request = self._queue.get()
            if request is _SHUTDOWN:
                self._queue.task_done()
                break
            try:
                self._serve(request, engine, name)
            finally:
                self._queue.task_done()

    def _serve(self, request: _Request, engine: PathQueryEngine, worker: str) -> None:
        outcome = self._execute(request, engine, worker)
        with self._stats_lock:
            self._completed += 1
            if outcome.timed_out:
                self._timed_out += 1
                if outcome.stopped_at == "queue":
                    self._timed_out_at_dequeue += 1
                else:
                    self._timed_out_in_flight += 1
            elif outcome.worker_died is not None:
                # A dead worker process is a serving-infrastructure fault,
                # attributed separately from query failures and timeouts.
                self._worker_died += 1
            elif outcome.error is not None:
                self._failed += 1
            if outcome.result_cache_hit:
                self._result_cache_served += 1
            elif outcome.ok:
                self._executed += 1
            self._queued_seconds_total += outcome.queued_seconds
            if outcome.queued_seconds > self._queued_seconds_max:
                self._queued_seconds_max = outcome.queued_seconds
            self._latency.observe(outcome.elapsed_seconds)
            self._queue_wait.observe(outcome.queued_seconds)
        request.ticket._resolve(outcome)

    def _execute(self, request: _Request, engine: PathQueryEngine, worker: str) -> QueryOutcome:
        version = request.snapshot.version
        # One clock for everything: the enqueue stamp, the absolute deadline
        # and the elapsed measurement below all come from time.monotonic(),
        # so every difference between them is meaningful (see module docs).
        started = time.monotonic()
        queued = started - request.enqueued_at
        params_tuple = _params_tuple(request.params)
        if request.deadline is not None and started >= request.deadline:
            return QueryOutcome(
                text=request.text,
                version=version,
                params=params_tuple if params_tuple is not None else (),
                timed_out=True,
                budget_reason="deadline",
                stopped_at="queue",
                queued_seconds=queued,
                worker=worker,
            )
        effective_executor = (
            request.executor if request.executor is not None else self.default_executor
        )
        # The bindings are part of the result identity: the plan cache
        # deliberately shares one entry across every binding of a prepared
        # text, so the *result* key must carry the bindings (sorted, so dict
        # insertion order never splits or aliases entries).  Unhashable
        # binding values (params_tuple is None) bypass the result cache
        # entirely rather than failing the request.  Under delta invalidation
        # the key is version-free and the entry is revalidated against the
        # graph delta; under the legacy policy the version is part of the key.
        key = (
            "outcome",
            request.text,
            params_tuple,
            request.max_length,
            effective_executor,
            request.limit,
        )
        if self.invalidation == "version":
            key = key + (version,)
        entry = self.result_cache.get(key) if params_tuple is not None else None
        cached = self._validate_entry(entry, version) if entry is not None else None
        if cached is not None:
            # Hand out a fresh PathSet per hit: PathSet is mutable, and a
            # consumer editing its outcome must not poison the cached entry
            # or other consumers (copying is linear in the result and far
            # cheaper than re-evaluating).
            assert cached.paths is not None
            return replace(
                cached,
                paths=PathSet.from_unique(cached.paths),
                # The entry may have been computed at a different version;
                # the outcome reports the version *this* request was pinned
                # to (the delta proved the results identical).
                version=version,
                result_cache_hit=True,
                # This request never consulted the plan cache nor visited
                # any path; the stored values describe the request that
                # computed the entry.
                plan_cache_hit=False,
                paths_visited=0,
                depth_reached=0,
                worker=worker,
                elapsed_seconds=time.monotonic() - started,
                queued_seconds=queued,
            )
        if self._pool is not None:
            return self._execute_process(
                request, engine, worker, version, params_tuple, key, started, queued
            )
        # The budget carries the request's *absolute* deadline, so time spent
        # queued (and in parse/plan) counts against it — an in-flight query
        # dies within one budget-check interval of the deadline.
        budget: QueryBudget | None = None
        if request.deadline is not None or request.max_visited is not None:
            budget = QueryBudget(
                deadline=request.deadline, max_visited=request.max_visited
            )
        try:
            result = engine.query(
                request.text,
                max_length=request.max_length,
                executor=request.executor,
                limit=request.limit,
                graph=request.snapshot,
                budget=budget,
                params=request.params,
            )
        except BudgetExceeded as exceeded:
            # A budget kill is an expected outcome, not a failure: report it
            # as timed out with the partial progress the execution made.
            # Nothing is cached — the result cache only ever stores complete
            # outcomes, and the plan cache holds at most the (valid) plan.
            return QueryOutcome(
                text=request.text,
                version=version,
                params=params_tuple if params_tuple is not None else (),
                timed_out=True,
                budget_reason=exceeded.reason,
                paths_visited=exceeded.paths_visited,
                depth_reached=exceeded.depth_reached,
                stopped_at=exceeded.stopped_at,
                worker=worker,
                elapsed_seconds=time.monotonic() - started,
                queued_seconds=queued,
            )
        except Exception as error:  # keep the worker alive on any query failure
            return QueryOutcome(
                text=request.text,
                version=version,
                params=params_tuple if params_tuple is not None else (),
                error=f"{type(error).__name__}: {error}",
                worker=worker,
                elapsed_seconds=time.monotonic() - started,
                queued_seconds=queued,
            )
        outcome = QueryOutcome(
            text=request.text,
            version=version,
            params=params_tuple if params_tuple is not None else (),
            paths=result.paths,
            executor=result.executor,
            plan_cache_hit=result.cache_hit,
            paths_visited=result.statistics.budget_paths_visited,
            depth_reached=result.statistics.budget_depth_reached,
            elapsed_seconds=time.monotonic() - started,
            queued_seconds=queued,
            worker=worker,
        )
        # Cache a private copy of the path set — the outcome handed to the
        # submitting caller must not alias the cached entry (see the hit path).
        if params_tuple is not None:
            self.result_cache.put(
                key,
                _CachedResult(
                    outcome=replace(outcome, paths=PathSet.from_unique(result.paths)),
                    footprint=result.statistics.footprint,
                ),
            )
        return outcome

    def _execute_process(
        self,
        request: _Request,
        engine: PathQueryEngine,
        worker: str,
        version: int,
        params_tuple: tuple | None,
        key: tuple,
        started: float,
        queued: float,
    ) -> QueryOutcome:
        """Serve one result-cache-missing request through the process pool.

        The split of work across the boundary is deliberate: the *parent*
        parses/optimizes (warming the shared plan cache for every future
        request and for the router's cost inspection), routes, and installs
        the result into the shared result cache; the *worker process* only
        evaluates.  The worker re-parses against its private per-process plan
        cache — plan objects never cross the pipe, result paths do (as id
        tuples), and the cached entry's footprint comes from the parent's
        plan, so PR 6's delta invalidation behaves identically to thread
        mode.
        """
        params = params_tuple if params_tuple is not None else ()
        requested = (
            request.executor if request.executor is not None else self.default_executor
        )
        try:
            if self._pool.crash_hook and request.text == CRASH_QUERY:
                # Fault injection (tests only): the sentinel is not valid GQL,
                # so skip parent-side parsing and ship it straight to a
                # worker, which os._exit()s on it.
                cached_plan = None
                decision = RouteDecision(
                    mode="single", executors=("pipeline",), reason="crash hook"
                )
            else:
                cached_plan = engine.prepare(
                    request.text, max_length=request.max_length, graph=request.snapshot
                )
                assert self._router is not None
                decision = self._router.decide(
                    cached_plan.optimized,
                    engine.cost_model(request.snapshot),
                    execution_mode=self.execution_mode,
                    requested=requested,
                )
            # Workers forked before this request's version can't see its
            # data; drift forks a fresh generation (no-op on the read path).
            self._pool.ensure_version(version)
            reply = self._pool.execute(
                text=request.text,
                params=request.params,
                max_length=request.max_length,
                executors=decision.executors,
                limit=request.limit,
                deadline=request.deadline,
                max_visited=request.max_visited,
                version=version,
                num_nodes=request.snapshot.num_nodes(),
                num_edges=request.snapshot.num_edges(),
                race=decision.racing,
            )
        except Exception as error:  # parse/route/dispatch failure
            return QueryOutcome(
                text=request.text,
                version=version,
                params=params,
                error=f"{type(error).__name__}: {error}",
                worker=worker,
                elapsed_seconds=time.monotonic() - started,
                queued_seconds=queued,
            )
        route = "race" if reply.raced else "single"
        common = dict(
            text=request.text,
            version=version,
            params=params,
            worker=reply.worker or worker,
            route=route,
            elapsed_seconds=time.monotonic() - started,
            queued_seconds=queued,
        )
        if reply.kind == "worker-died":
            return QueryOutcome(
                **common,
                error=reply.error or "worker process died",
                worker_died=reply.worker_died,
            )
        if reply.kind == "budget":
            return QueryOutcome(
                **common,
                timed_out=True,
                budget_reason=reply.budget_reason,
                paths_visited=reply.paths_visited,
                depth_reached=reply.depth_reached,
                stopped_at=reply.stopped_at,
            )
        if reply.kind == "error":
            return QueryOutcome(**common, error=reply.error)
        # Rehydrate the wire-encoded paths against the request's snapshot so
        # process-mode outcomes reference the same pinned graph view as
        # thread-mode ones.
        paths = decode_paths(request.snapshot, reply.paths)
        outcome = QueryOutcome(
            **common,
            paths=paths,
            executor=reply.executor,
            plan_cache_hit=reply.plan_cache_hit,
            paths_visited=reply.paths_visited,
            depth_reached=reply.depth_reached,
        )
        if params_tuple is not None and cached_plan is not None:
            self.result_cache.put(
                key,
                _CachedResult(
                    outcome=replace(outcome, paths=PathSet.from_unique(paths)),
                    footprint=cached_plan.compute_footprint(),
                ),
            )
        return outcome

    def _validate_entry(
        self, entry: _CachedResult, version: int
    ) -> QueryOutcome | None:
        """Decide whether a result-cache entry may serve a request at ``version``.

        Same version — always.  Different version — only under delta
        invalidation, and only when the graph delta between the entry's
        version and the request's version cannot intersect the entry's
        footprint.  An expired delta window (``delta_between`` returning
        ``None``) or a missing footprint degrades to rejection, i.e. the
        legacy behavior.  Stale entries are *not* eagerly evicted: the
        recompute overwrites them in place (same key).
        """
        cached = entry.outcome
        if cached.version == version:
            return cached
        if self.invalidation != "delta":  # pragma: no cover - version keys pin versions
            return None
        low, high = sorted((cached.version, version))
        delta = self.graph.delta_between(low, high)
        if delta is not None and not delta.affects(entry.footprint):
            with self._stats_lock:
                self._cross_version_hits += 1
            return cached
        with self._stats_lock:
            self._delta_rejected += 1
        return None

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def statistics(self) -> ServiceStatistics:
        """Return a point-in-time snapshot of the service counters."""
        pool_stats = self._pool.statistics() if self._pool is not None else {}
        with self._stats_lock:
            return ServiceStatistics(
                backend="process" if self._pool is not None else "thread",
                workers=self.workers,
                invalidation=self.invalidation,
                execution_mode=self.execution_mode,
                submitted=self._submitted,
                rejected=self._rejected,
                completed=self._completed,
                failed=self._failed,
                timed_out=self._timed_out,
                timed_out_at_dequeue=self._timed_out_at_dequeue,
                timed_out_in_flight=self._timed_out_in_flight,
                executed=self._executed,
                result_cache_served=self._result_cache_served,
                result_cache_cross_version_hits=self._cross_version_hits,
                result_cache_delta_rejected=self._delta_rejected,
                queued_seconds_total=self._queued_seconds_total,
                queued_seconds_max=self._queued_seconds_max,
                worker_died=self._worker_died,
                requeued=pool_stats.get("requeued", 0),
                reforks=pool_stats.get("reforks", 0),
                races=pool_stats.get("races", 0),
                race_wins=pool_stats.get("race_wins", {}),
                plan_cache=self.plan_cache.stats(),
                result_cache=self.result_cache.stats(),
                pool=pool_stats,
                latency={
                    "query_seconds": self._latency.summary(),
                    "queue_wait_seconds": self._queue_wait.summary(),
                },
            )

    def close(self, pool_deadline: float = 5.0) -> None:
        """Stop accepting submissions, drain the queue, and join the workers.

        Already-submitted queries are served before the workers exit; the
        worker-process pool (if any) is then shut down within
        ``pool_deadline`` seconds — poison pills first, ``terminate()`` for
        whoever overstays.  Idempotent; the service cannot be reopened.
        """
        with self._stats_lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            return
        # Taking the submit lock *after* flipping the flag waits for any
        # in-flight submit() to finish enqueueing (or abort on the flag) —
        # afterwards no request can land behind the shutdown sentinels.
        with self._submit_lock:
            pass
        if self._queue is not None:
            for _ in self._threads:
                self._queue.put(_SHUTDOWN)
            for thread in self._threads:
                thread.join()
        if self._pool is not None:
            # After the dispatcher threads joined, no query is in flight —
            # the pool drains instantly unless a worker is wedged.
            self._pool.close(deadline=pool_deadline)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService(graph={self.graph.name!r}, workers={self.workers}, "
            f"submitted={self._submitted})"
        )
