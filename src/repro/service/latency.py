"""Mergeable log-bucketed latency histograms for serving statistics.

Tail latency is the serving metric that averages hide: one slow query in a
hundred is invisible in a mean but defines the user experience.  This module
provides the :class:`LatencyHistogram` behind the ``p50``/``p95``/``p99``
numbers in :class:`~repro.service.service.ServiceStatistics`, the network
front-end's wire statistics, and the replay harness's regression reports.

Design constraints, in order:

* **O(1) memory** — a histogram observing millions of requests must not keep
  them; observations land in geometrically spaced buckets (factor 2 from
  1 µs to ~4500 s, ~32 buckets), so a percentile is accurate to within one
  bucket width (a factor-of-two bound — the right resolution for latency,
  where regressions of interest are multiplicative).
* **Mergeable** — bucket counts add, so histograms from several workers,
  processes or service instances fold into one whose percentiles are exact
  over the union (unlike merging precomputed percentiles, which is
  meaningless).  :meth:`summary` emits a plain-dict form that survives JSON
  and pickling; :meth:`from_summary` reconstructs, and
  :meth:`merge_summaries` folds two summaries without leaving dict-land —
  that is what :meth:`ServiceStatistics.merge` uses.
* **No third-party deps** — stdlib ``bisect`` over precomputed bounds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping

__all__ = ["LatencyHistogram"]

#: Geometric bucket upper bounds in seconds: 1 µs, 2 µs, ... doubling up to
#: ~4500 s.  Everything above the last bound lands in a final overflow bucket.
_BOUNDS: tuple[float, ...] = tuple(1e-6 * (2.0**index) for index in range(32))


class LatencyHistogram:
    """A fixed-size log-bucketed histogram of durations in seconds."""

    __slots__ = ("_counts", "count", "total_seconds", "max_seconds", "min_seconds")

    def __init__(self) -> None:
        self._counts = [0] * (len(_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.min_seconds = float("inf")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self._counts[bisect_left(_BOUNDS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def percentile(self, quantile: float) -> float:
        """The upper bound of the bucket holding the ``quantile`` rank.

        Returns 0.0 on an empty histogram.  The answer overestimates the true
        percentile by at most one bucket (a factor of two) and is additionally
        clamped to the exact observed maximum, so ``percentile(1.0)`` is the
        true max.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(quantile * self.count + 0.9999999))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                bound = _BOUNDS[index] if index < len(_BOUNDS) else self.max_seconds
                return min(bound, self.max_seconds)
        return self.max_seconds  # pragma: no cover - rank <= count by construction

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of the observed durations (0.0 when empty)."""
        return self.total_seconds / self.count if self.count else 0.0

    def summary(self) -> dict:
        """A JSON-safe dict: count, total/max/mean, p50/p95/p99, sparse buckets.

        The ``buckets`` mapping (bucket index → count, non-empty only) plus
        ``count``/``total_seconds``/``max_seconds`` is the complete mergeable
        state; the percentile fields are derived conveniences recomputed on
        merge, never added together.
        """
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            "buckets": {
                str(index): bucket_count
                for index, bucket_count in enumerate(self._counts)
                if bucket_count
            },
        }

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place; returns ``self``."""
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)
        self.min_seconds = min(self.min_seconds, other.min_seconds)
        return self

    @classmethod
    def from_summary(cls, summary: Mapping) -> "LatencyHistogram":
        """Reconstruct a histogram from a :meth:`summary` dict.

        Only the mergeable state is read; derived percentile fields in the
        input are ignored (and recomputed exactly from the buckets).
        """
        histogram = cls()
        for key, bucket_count in (summary.get("buckets") or {}).items():
            histogram._counts[int(key)] += int(bucket_count)
        histogram.count = int(summary.get("count", 0))
        histogram.total_seconds = float(summary.get("total_seconds", 0.0))
        histogram.max_seconds = float(summary.get("max_seconds", 0.0))
        if histogram.count:
            histogram.min_seconds = float(summary.get("min_seconds", 0.0))
        return histogram

    @classmethod
    def merge_summaries(cls, mine: Mapping, theirs: Mapping) -> dict:
        """Fold two :meth:`summary` dicts into one with exact merged percentiles."""
        return cls.from_summary(mine).merge(cls.from_summary(theirs)).summary()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean_seconds * 1e3:.2f}ms, "
            f"p99={self.percentile(0.99) * 1e3:.2f}ms)"
        )
