"""E-F3 — Figure 3: the core-algebra plan for friends and friends-of-friends of Moe.

Regenerates Figure 3: the plan
``σ[first.name='Moe']( σKnows(Edges) ∪ (σKnows(Edges) ⋈ σKnows(Edges)) )``
is built as drawn, evaluated, and checked to return the 1-hop and 2-hop Knows
paths starting at Moe.  The benchmark measures the core-algebra evaluation
and compares the unoptimized plan with its selection-pushdown rewrite.
"""

from __future__ import annotations

from repro.algebra.conditions import label_of_edge, prop_of_first
from repro.algebra.evaluator import Evaluator, evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Join, Selection, Union
from repro.bench.reporting import format_table
from repro.optimizer.engine import optimize

EXPECTED = {
    ("n1", "e1", "n2"),
    ("n1", "e1", "n2", "e2", "n3"),
    ("n1", "e1", "n2", "e4", "n4"),
}


def figure3_plan() -> Selection:
    knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
    return Selection(prop_of_first("name", "Moe"), Union(knows, Join(knows, knows)))


def test_figure3_plan_results(benchmark, figure1) -> None:
    result = benchmark(evaluate_to_paths, figure3_plan(), figure1)
    assert {path.interleaved() for path in result} == EXPECTED


def test_figure3_optimized_plan_results(benchmark, figure1) -> None:
    optimized = optimize(figure3_plan()).optimized
    result = benchmark(evaluate_to_paths, optimized, figure1)
    assert {path.interleaved() for path in result} == EXPECTED


def test_figure3_report(figure1) -> None:
    """Print the Figure 3 reproduction and the intermediate-result comparison."""
    plan = figure3_plan()
    optimized = optimize(plan).optimized

    rows = []
    for name, candidate in (("as drawn (Figure 3)", plan), ("after pushdown (Figure 6b)", optimized)):
        evaluator = Evaluator(figure1)
        result = evaluator.evaluate_paths(candidate)
        rows.append((name, len(result), evaluator.statistics.intermediate_paths))
    print()
    print(
        format_table(
            ["Plan", "|result|", "intermediate paths"],
            rows,
            title="Figure 3 — friends and friends-of-friends of Moe (Knows | Knows/Knows)",
        )
    )
    assert rows[0][1] == rows[1][1] == len(EXPECTED)
    assert rows[1][2] <= rows[0][2]
