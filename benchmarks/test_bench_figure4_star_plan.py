"""E-F4 — Figure 4: the evaluation tree with Kleene plus and Kleene star branches.

Regenerates Figure 4: the plan
``σ[first.name='Moe' ∧ last.name='Apu']( ϕ(Knows) ∪ (ϕ(Likes ⋈ Has_creator) ∪ Nodes(G)) )``
where the right-hand union with ``Nodes(G)`` encodes the ``*`` (zero or more)
of ``(Likes/Has_creator)*``.  The regex compiler is checked to produce exactly
this shape, and evaluation under ϕSimple / ϕAcyclic is benchmarked.
"""

from __future__ import annotations

from repro.algebra.conditions import prop_of_first, prop_of_last
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import NodesScan, Recursive, Selection, Union
from repro.algebra.printer import to_algebra_notation
from repro.bench.reporting import format_table
from repro.rpq.compile import CompileOptions, compile_pattern, compile_regex
from repro.semantics.restrictors import Restrictor

REGEX = "(:Knows+)|((:Likes/:Has_creator)*)"


def test_figure4_compiled_shape() -> None:
    """The compiler produces the Figure 4 tree: Union(ϕ(Knows), Union(ϕ(L⋈H), Nodes(G)))."""
    plan = compile_regex(REGEX, CompileOptions(restrictor=Restrictor.SIMPLE))
    assert isinstance(plan, Union)
    assert isinstance(plan.left, Recursive)
    assert isinstance(plan.right, Union)
    assert isinstance(plan.right.left, Recursive)
    assert plan.right.right == NodesScan()
    notation = to_algebra_notation(plan)
    assert "Nodes(G)" in notation
    assert notation.count("ϕSimple") == 2


def _figure4_query_plan(restrictor: Restrictor) -> Selection:
    return compile_pattern(
        REGEX,
        source_condition=prop_of_first("name", "Moe"),
        target_condition=prop_of_last("name", "Apu"),
        options=CompileOptions(restrictor=restrictor),
    )


def test_figure4_simple_evaluation(benchmark, figure1) -> None:
    plan = _figure4_query_plan(Restrictor.SIMPLE)
    result = benchmark(evaluate_to_paths, plan, figure1)
    # Same two answers as Figure 2: the star's extra empty-path branch cannot
    # connect Moe to Apu (they are different nodes).
    assert {path.interleaved() for path in result} == {
        ("n1", "e1", "n2", "e4", "n4"),
        ("n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4"),
    }


def test_figure4_star_matches_empty_path(benchmark, figure1) -> None:
    """With equal endpoints the star branch contributes the length-zero path."""
    plan = compile_pattern(
        REGEX,
        source_condition=prop_of_first("name", "Moe"),
        target_condition=prop_of_last("name", "Moe"),
        options=CompileOptions(restrictor=Restrictor.SIMPLE),
    )
    result = benchmark(evaluate_to_paths, plan, figure1)
    assert any(path.len() == 0 and path.first() == "n1" for path in result)


def test_figure4_report(figure1) -> None:
    """Print the Figure 4 reproduction under the terminating ϕ variants."""
    rows = []
    for restrictor in (Restrictor.SIMPLE, Restrictor.ACYCLIC, Restrictor.TRAIL, Restrictor.SHORTEST):
        result = evaluate_to_paths(_figure4_query_plan(restrictor), figure1)
        rows.append((f"ϕ{restrictor.value.title()}", len(result)))
    print()
    print(
        format_table(
            ["Recursive operator", "|paths Moe→Apu|"],
            rows,
            title="Figure 4 — (:Knows+)|((:Likes/:Has_creator)*) from Moe to Apu",
        )
    )
