"""E-X1 — query composition (Section 2.3) and beyond-GQL operators.

The paper's composability claim is architectural rather than experimental;
this added experiment exercises it end to end: the Section 2.3 concatenation
example, union composition, and the intersection/difference operators the
paper lists as natural extensions, all measured on Figure 1 and on a
synthetic SNB-like graph.  It also compares the materializing logical
evaluator with the pull-based physical pipeline on the same plans.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import Difference, EdgesScan, Intersection, Join, Recursive, Selection
from repro.bench.reporting import format_table
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.engine.physical import execute_pipeline
from repro.paths.predicates import is_trail
from repro.semantics.compose import QueryStep, compose_concatenation, evaluate_composition, paper_example_composition
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector, SelectorKind


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def likes_creator_scan() -> Join:
    return Join(
        Selection(label_of_edge(1, "Likes"), EdgesScan()),
        Selection(label_of_edge(1, "Has_creator"), EdgesScan()),
    )


@pytest.fixture(scope="module")
def snb_graph():
    return ldbc_like_graph(LDBCParameters(num_persons=60, num_messages=120, seed=17))


def test_composition_paper_example_figure1(benchmark, figure1) -> None:
    query = paper_example_composition(knows_scan(), likes_creator_scan())
    result = benchmark(evaluate_composition, query, figure1)
    assert len(result) > 0
    assert all(is_trail(path) for path in result)


def test_composition_paper_example_snb(benchmark, snb_graph) -> None:
    query = compose_concatenation(
        Selector(SelectorKind.ALL_SHORTEST),
        Restrictor.TRAIL,
        QueryStep(Selector(SelectorKind.ANY_SHORTEST), Restrictor.WALK, knows_scan()),
        QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, likes_creator_scan(), max_length=4),
    )
    result = benchmark(evaluate_composition, query, snb_graph)
    assert all(is_trail(path) for path in result)


def test_intersection_operator(benchmark, figure1) -> None:
    plan = Intersection(
        Recursive(knows_scan(), Restrictor.TRAIL), Recursive(knows_scan(), Restrictor.ACYCLIC)
    )
    result = benchmark(evaluate_to_paths, plan, figure1)
    assert len(result) == 7


def test_difference_operator(benchmark, figure1) -> None:
    plan = Difference(
        Recursive(knows_scan(), Restrictor.TRAIL), Recursive(knows_scan(), Restrictor.ACYCLIC)
    )
    result = benchmark(evaluate_to_paths, plan, figure1)
    assert len(result) == 5


def test_logical_evaluator_on_snb(benchmark, snb_graph) -> None:
    plan = Recursive(knows_scan(), Restrictor.ACYCLIC, max_length=4)
    result = benchmark(evaluate_to_paths, plan, snb_graph)
    assert len(result) > 0


def test_physical_pipeline_on_snb(benchmark, snb_graph) -> None:
    plan = Recursive(knows_scan(), Restrictor.ACYCLIC, max_length=4)
    result = benchmark(execute_pipeline, plan, snb_graph)
    assert result == evaluate_to_paths(plan, snb_graph)


def test_composition_report(figure1, snb_graph) -> None:
    """Print result sizes for the composition and extension operators."""
    rows = []

    figure1_query = paper_example_composition(knows_scan(), likes_creator_scan())
    rows.append(
        (
            "figure1",
            "ALL TRAIL [Knows+] · ANY SHORTEST WALK [(L/H)+]  as ALL SHORTEST TRAIL",
            len(evaluate_composition(figure1_query, figure1)),
        )
    )
    trails = Recursive(knows_scan(), Restrictor.TRAIL)
    acyclic = Recursive(knows_scan(), Restrictor.ACYCLIC)
    rows.append(("figure1", "ϕTrail(Knows) ∩ ϕAcyclic(Knows)", len(evaluate_to_paths(Intersection(trails, acyclic), figure1))))
    rows.append(("figure1", "ϕTrail(Knows) ∖ ϕAcyclic(Knows)", len(evaluate_to_paths(Difference(trails, acyclic), figure1))))

    snb_query = compose_concatenation(
        Selector(SelectorKind.ALL_SHORTEST),
        Restrictor.TRAIL,
        QueryStep(Selector(SelectorKind.ANY_SHORTEST), Restrictor.WALK, knows_scan()),
        QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, likes_creator_scan(), max_length=4),
    )
    rows.append(
        (
            "ldbc-like (60 persons)",
            "shortest Knows chain · acyclic (Likes/Has_creator)+  as ALL SHORTEST TRAIL",
            len(evaluate_composition(snb_query, snb_graph)),
        )
    )
    print()
    print(
        format_table(
            ["graph", "composition", "|result|"],
            rows,
            title="E-X1 — query composition and beyond-GQL set operators",
        )
    )
    assert all(row[2] >= 0 for row in rows)
