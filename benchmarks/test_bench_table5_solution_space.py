"""E-T5 — Table 5: the worked γST solution space over the Knows+ trails.

Regenerates Table 5: the γST grouping of the ϕTrail(Knows+) answer set,
reporting per partition the member paths, MinL(P), MinL(G) and Len(p), and
asserting the MinL values the paper tabulates for the partitions it lists.
The benchmark measures group-by plus the MinL computations.
"""

from __future__ import annotations

import pytest

from repro.algebra.solution_space import GroupByKey, group_by
from repro.bench.reporting import format_table
from repro.semantics.restrictors import Restrictor, recursive_closure

#: MinL(P) per endpoint pair for the partitions Table 5 lists.
TABLE5_MIN_LENGTHS = {
    ("n1", "n2"): 1,
    ("n1", "n3"): 2,
    ("n1", "n4"): 2,
    ("n2", "n2"): 2,
    ("n2", "n3"): 1,
    ("n2", "n4"): 1,
    ("n3", "n4"): 2,
}


@pytest.fixture(scope="module")
def knows_trails(knows_edges):
    return recursive_closure(knows_edges, Restrictor.TRAIL)


def test_table5_solution_space_benchmark(benchmark, knows_trails) -> None:
    def build():
        space = group_by(knows_trails, GroupByKey.ST)
        return space, {p.key: p.min_length() for p in space.partitions}

    space, min_lengths = benchmark(build)
    for endpoints, expected in TABLE5_MIN_LENGTHS.items():
        assert min_lengths[endpoints] == expected
    # γST: one group per partition, and every group's MinL equals its partition's.
    for partition in space.partitions:
        assert len(partition.groups) == 1
        assert partition.groups[0].min_length() == partition.min_length()


def test_table5_report(knows_trails) -> None:
    """Print the regenerated Table 5 (partition, group, path, MinL(P), MinL(G), Len(p))."""
    space = group_by(knows_trails, GroupByKey.ST)
    rows = []
    for index, partition in enumerate(
        sorted(space.partitions, key=lambda p: p.key), start=1
    ):
        for group_index, group in enumerate(partition.groups, start=1):
            for path in sorted(group.paths, key=lambda p: p.len()):
                rows.append(
                    (
                        f"part{index} {partition.key}",
                        f"group{index}{group_index}",
                        str(path),
                        partition.min_length(),
                        group.min_length(),
                        path.len(),
                    )
                )
    print()
    print(
        format_table(
            ["Partition P", "Group G", "Path p", "MinL(P)", "MinL(G)", "Len(p)"],
            rows,
            title="Table 5 — γST solution space over ϕTrail(Knows+) on Figure 1",
        )
    )
    assert len(rows) == len(knows_trails)
