"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and additionally measures the wall-clock
cost of the operation via pytest-benchmark.  The reproduced rows are printed
with ``-s`` / captured in the benchmark output so they can be compared with
the paper side by side; EXPERIMENTS.md records that comparison.
"""

from __future__ import annotations

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.graph.model import PropertyGraph
from repro.paths.pathset import PathSet


@pytest.fixture(scope="module")
def figure1() -> PropertyGraph:
    """The paper's Figure 1 graph."""
    return figure1_graph()


@pytest.fixture(scope="module")
def knows_edges(figure1: PropertyGraph) -> PathSet:
    """The Knows edges of Figure 1 (the base set of the Table 3 / Figure 5 examples)."""
    return PathSet.edges_of(figure1).filter(
        lambda path: figure1.edge(path.edge(1)).label == "Knows"
    )
