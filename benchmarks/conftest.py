"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and additionally measures the wall-clock
cost of the operation via pytest-benchmark.  The reproduced rows are printed
with ``-s`` / captured in the benchmark output so they can be compared with
the paper side by side; EXPERIMENTS.md records that comparison.

Two harness modes exist (PERFORMANCE.md, "Running the benchmarks"):

* the default mode runs every size-parameterized benchmark at all sizes;
* the **quick** mode (``BENCH_QUICK=1``, or selecting the ``quick`` marker)
  runs each bench at its smallest configured size.

In both modes the session writes ``BENCH_closure.json`` at the repo root via
:func:`repro.bench.reporting.write_bench_json`: wall-clock timings of the
incremental closure engine (:func:`~repro.semantics.restrictors.recursive_closure`)
against the pre-incremental baseline
(:func:`~repro.semantics.restrictors.recursive_closure_baseline`) and the
product-graph automaton executor (:class:`~repro.engine.automaton.AutomatonExecutor`,
on both the mutable graph and its frozen twin) on the restrictor-scaling
workloads, giving future PRs a perf trajectory to compare against.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path as FilePath

import pytest

from repro.algebra.expressions import EdgesScan, Recursive
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import quick_mode
from repro.datasets.figure1 import figure1_graph
from repro.datasets.generators import complete_graph, cycle_graph
from repro.engine.automaton import AutomatonExecutor
from repro.execution import QueryBudget
from repro.graph.compact import CompactGraph
from repro.graph.model import PropertyGraph
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import (
    Restrictor,
    recursive_closure,
    recursive_closure_baseline,
)

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

#: Closure workloads recorded in BENCH_closure.json: (name, base factory,
#: restrictors, max_length).  Cycles mirror the sparse tier of
#: test_bench_restrictor_scaling; cliques its dense tier (the bound keeps the
#: Trail closure tractable and covers every acyclic/simple path).  In full
#: mode every size after the quick tier is measured, so the legacy tiers
#: (cycle-16, clique-6) keep their trajectory and the top tiers (cycle-24,
#: clique-7) record the columnar-core scaling.
_TRAJECTORY_SIZES = {"cycle": (4, 16, 24), "clique": (4, 6, 7)}
#: Workloads where the pre-incremental baseline is skipped: clique-7 was
#: infeasible before the columnar core (the per-round re-scan baseline takes
#: tens of seconds there), so its rows record the incremental-vs-compact
#: comparison only and report baseline fields as null.
_BASELINE_SKIP = {("clique", 7)}
_TRAJECTORY_RESTRICTORS = (
    Restrictor.TRAIL,
    Restrictor.ACYCLIC,
    Restrictor.SIMPLE,
    Restrictor.SHORTEST,
)


_quick_session = False


def pytest_configure(config: pytest.Config) -> None:
    global _quick_session
    config.addinivalue_line(
        "markers",
        "quick: smallest-size variant of a scaling benchmark (run with -m quick or BENCH_QUICK=1)",
    )
    # Either entry point to quick mode — the env var or selecting the quick
    # marker — must also shrink the trajectory measurement below.
    _quick_session = quick_mode() or "quick" in (config.option.markexpr or "")


@pytest.fixture(scope="module")
def figure1() -> PropertyGraph:
    """The paper's Figure 1 graph."""
    return figure1_graph()


@pytest.fixture(scope="module")
def knows_edges(figure1: PropertyGraph) -> PathSet:
    """The Knows edges of Figure 1 (the base set of the Table 3 / Figure 5 examples)."""
    return PathSet.edges_of(figure1).filter(
        lambda path: figure1.edge(path.edge(1)).label == "Knows"
    )


def _best_of_each(
    callables: list, repetitions: int = 3
) -> tuple[list[float], list[object]]:
    """Best per-call wall-clock time of each callable, plus their results.

    The trajectory compares *ratios* between strategies, so the samples are
    interleaved round-robin — drift on a shared CI host lands on every
    strategy equally instead of skewing whichever was measured last.  Two
    more noise controls: sub-millisecond workloads (quick mode) are batched
    timeit-style until one sample spans a few milliseconds, and the cyclic
    GC is paused while sampling so collection pauses cannot land in one
    strategy's samples but not another's.
    """
    results: list[object] = []
    inners: list[int] = []
    for callable_ in callables:
        start = time.perf_counter()
        results.append(callable_())
        first = time.perf_counter() - start
        inners.append(max(1, round(0.02 / first)) if first < 0.02 else 1)
    samples = max(repetitions, 5) if max(inners) > 1 else repetitions
    bests = [float("inf")] * len(callables)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(samples):
            for index, callable_ in enumerate(callables):
                inner = inners[index]
                start = time.perf_counter()
                for _ in range(inner):
                    results[index] = callable_()
                elapsed = (time.perf_counter() - start) / inner
                if elapsed < bests[index]:
                    bests[index] = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return bests, results


def _closure_trajectory_entries() -> list[dict]:
    quick = _quick_session
    entries: list[dict] = []
    for family, sizes in _TRAJECTORY_SIZES.items():
        for size in sizes[:1] if quick else sizes[1:]:
            if family == "cycle":
                graph = cycle_graph(size)
                max_length = None
            else:
                graph = complete_graph(size)
                max_length = size - 1
            # The frozen twin routes every closure through the int-encoded
            # columnar core; freeze() cost is measured separately and
            # reported per row so the one-off conversion is never hidden
            # inside the closure timings.
            frozen = graph.copy()
            frozen.freeze()
            (freeze_s,), _ = _best_of_each([lambda: CompactGraph.from_graph(graph)])
            base = PathSet.edges_of(graph)
            frozen_base = PathSet.edges_of(frozen)
            with_baseline = (family, size) not in _BASELINE_SKIP
            for restrictor in _TRAJECTORY_RESTRICTORS:
                # The budgeted strategy is the incremental closure with a
                # budget that never trips: it measures the pure cost of
                # cooperative cancellation checks on the hot loop (the
                # ISSUE 4 acceptance bound is < 5 % on the clique
                # workloads).  The budget is built outside the timed call,
                # like a serving worker does — construction is engine-side,
                # not loop overhead.
                budget = QueryBudget.from_timeout(3600.0, max_visited=10**12)
                # The automaton rows evaluate the *same* closure as a product
                # search over graph × NFA(edge-label+); parity with the
                # incremental result is asserted before any row is written.
                plan = Recursive(EdgesScan(), restrictor, max_length)
                automaton = AutomatonExecutor()
                callables = [
                    lambda: recursive_closure(base, restrictor, max_length),
                    lambda: recursive_closure(frozen_base, restrictor, max_length),
                    lambda: automaton.execute(plan, graph).paths,
                    lambda: automaton.execute(plan, frozen).paths,
                ]
                if with_baseline:
                    callables += [
                        lambda: recursive_closure_baseline(base, restrictor, max_length),
                        lambda: recursive_closure(
                            base, restrictor, max_length, budget=budget
                        ),
                    ]
                timings, results = _best_of_each(callables)
                incremental_s, compact_s = timings[0], timings[1]
                automaton_s, automaton_compact_s = timings[2], timings[3]
                result, compact_result = results[0], results[1]
                assert result == compact_result, (family, size, restrictor)
                assert result == results[2], (family, size, restrictor)
                assert result == results[3], (family, size, restrictor)
                entry = {
                    "workload": f"{family}-{size}",
                    "restrictor": restrictor.value,
                    "max_length": max_length,
                    "paths": len(result),
                    "incremental_s": round(incremental_s, 6),
                    "compact_s": round(compact_s, 6),
                    "compact_speedup": round(incremental_s / compact_s, 2),
                    "freeze_s": round(freeze_s, 6),
                    "automaton_s": round(automaton_s, 6),
                    "automaton_speedup": round(incremental_s / automaton_s, 2),
                    "automaton_compact_s": round(automaton_compact_s, 6),
                    "automaton_compact_speedup": round(
                        compact_s / automaton_compact_s, 2
                    ),
                }
                if with_baseline:
                    baseline_s, budgeted_s = timings[4], timings[5]
                    assert result == results[4], (family, size, restrictor)
                    assert result == results[5], (family, size, restrictor)
                    entry.update(
                        {
                            "baseline_s": round(baseline_s, 6),
                            "speedup": round(baseline_s / incremental_s, 2),
                            "budgeted_s": round(budgeted_s, 6),
                            "budget_overhead": round(budgeted_s / incremental_s, 3),
                        }
                    )
                else:
                    entry.update(
                        {
                            "baseline_s": None,
                            "speedup": None,
                            "budgeted_s": None,
                            "budget_overhead": None,
                        }
                    )
                entries.append(entry)
    return entries


@pytest.fixture(scope="session", autouse=True)
def closure_perf_trajectory() -> None:
    """Write BENCH_closure.json after the benchmark session (both modes)."""
    yield
    entries = _closure_trajectory_entries()
    write_bench_json(
        str(_REPO_ROOT / "BENCH_closure.json"),
        "closure-incremental-vs-baseline",
        entries,
        metadata={
            "mode": "quick" if _quick_session else "full",
            "strategies": {
                "incremental": "recursive_closure (indexed frontier, O(1) restrictor checks)",
                "compact": "recursive_closure over a frozen CompactGraph "
                "(int-encoded paths, bitmask visited states; "
                "compact_speedup = incremental_s / compact_s, freeze_s = "
                "one-off CompactGraph.from_graph cost)",
                "baseline": "recursive_closure_baseline (per-round re-index + full re-scans)",
                "budgeted": "recursive_closure with a never-tripping QueryBudget "
                "(budget_overhead = budgeted_s / incremental_s)",
                "automaton": "AutomatonExecutor product-graph search of the same "
                "closure plan (automaton_speedup = incremental_s / automaton_s; "
                "automaton_compact_* measures the frozen-graph int route against "
                "the compact closure)",
            },
        },
    )
