"""E-T4 — Table 4: group-by expressions and the solution-space organizations they induce.

Regenerates Table 4: for each of the eight γψ variants, the harness reports
the number of partitions and groups produced over the ϕTrail(Knows+) answer
set and asserts the organization the table describes (single vs. N partitions,
single vs. M groups per partition).  The benchmark measures the group-by cost
per variant.
"""

from __future__ import annotations

import pytest

from repro.algebra.solution_space import GroupByKey, group_by
from repro.bench.reporting import format_table
from repro.semantics.restrictors import Restrictor, recursive_closure

TABLE4_ORGANIZATION = {
    GroupByKey.NONE: "1 partition, 1 group",
    GroupByKey.S: "N partitions, 1 group per partition",
    GroupByKey.T: "N partitions, 1 group per partition",
    GroupByKey.L: "1 partition, M groups per partition",
    GroupByKey.ST: "N partitions, 1 group per partition",
    GroupByKey.SL: "N partitions, M groups per partition",
    GroupByKey.TL: "N partitions, M groups per partition",
    GroupByKey.STL: "N partitions, M groups per partition",
}


@pytest.fixture(scope="module")
def knows_trails(knows_edges):
    return recursive_closure(knows_edges, Restrictor.TRAIL)


def _check_shape(key: GroupByKey, space, paths) -> None:
    sources = {p.first() for p in paths}
    targets = {p.last() for p in paths}
    pairs = {p.endpoints() for p in paths}
    if key is GroupByKey.NONE:
        assert space.num_partitions() == 1 and space.num_groups() == 1
    elif key is GroupByKey.S:
        assert space.num_partitions() == len(sources)
        assert space.num_groups() == space.num_partitions()
    elif key is GroupByKey.T:
        assert space.num_partitions() == len(targets)
        assert space.num_groups() == space.num_partitions()
    elif key is GroupByKey.L:
        assert space.num_partitions() == 1
        assert space.num_groups() == len({p.len() for p in paths})
    elif key is GroupByKey.ST:
        assert space.num_partitions() == len(pairs)
        assert space.num_groups() == space.num_partitions()
    else:
        # SL / TL / STL: groups refine partitions by length.
        assert space.num_groups() >= space.num_partitions()
    assert space.num_paths() == len(paths)


@pytest.mark.parametrize("key", list(GroupByKey), ids=[k.value or "none" for k in GroupByKey])
def test_table4_groupby_shape(benchmark, knows_trails, key) -> None:
    space = benchmark(group_by, knows_trails, key)
    _check_shape(key, space, knows_trails)


def test_table4_report(knows_trails) -> None:
    """Print the regenerated Table 4 with concrete partition/group counts."""
    rows = []
    for key in GroupByKey:
        space = group_by(knows_trails, key)
        rows.append(
            (
                f"γ{key.value}" if key.value else "γ",
                TABLE4_ORGANIZATION[key],
                space.num_partitions(),
                space.num_groups(),
            )
        )
    print()
    print(
        format_table(
            ["Group-by", "Organization (Table 4)", "partitions", "groups"],
            rows,
            title="Table 4 — solution-space organization per group-by key (ϕTrail(Knows+))",
        )
    )
