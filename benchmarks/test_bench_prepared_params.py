"""Benchmark: parameterized prepared queries vs. constant-varying raw texts.

The workload the client API's prepared queries exist for: the *same* query
shape executed many times with a different constant each time (a lookup
endpoint serving per-user requests).  Raw texts differ byte-for-byte per
constant, so the plan cache misses every single time and every request pays
parse + plan + optimize; a prepared ``$name`` query is planned once and every
binding is a plan-cache hit.

The measured comparison (same bindings, same results, asserted identical)
lands in ``BENCH_engine.json`` under the ``prepared_queries`` key, merged
into the file the executor benchmark writes — the single engine-level perf
trajectory.  PERFORMANCE.md discusses the numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path as FilePath

import pytest

from repro.api import connect
from repro.bench.workloads import quick_mode
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

#: Requests per run.  Every request carries a *distinct* constant (ages
#: 18..80 are unique per request), the defining property of the workload:
#: a text-keyed plan cache can never hit, a parameter-keyed one always does.
NUM_BINDINGS = 30 if quick_mode() else 60

RAW_TEXT = "MATCH ALL TRAIL p = (?x {age: %d})-[:Knows]->(?y)"
PARAM_TEXT = "MATCH ALL TRAIL p = (?x {age: $age})-[:Knows]->(?y)"


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(LDBCParameters(num_persons=60, num_messages=40, seed=7))


@pytest.fixture(scope="module")
def measured(graph) -> dict:
    bindings = [18 + index for index in range(NUM_BINDINGS)]  # all distinct

    raw_db = connect(graph)
    with raw_db.session() as session:
        started = time.perf_counter()
        raw_results = [
            tuple(str(path) for path in session.query(RAW_TEXT % value).paths.sorted())
            for value in bindings
        ]
        raw_seconds = time.perf_counter() - started
    raw_stats = raw_db.cache_stats()

    prepared_db = connect(graph)
    with prepared_db.session() as session:
        prepared = session.prepare(PARAM_TEXT)
        started = time.perf_counter()
        prepared_results = [
            tuple(str(path) for path in prepared.query(age=value).paths.sorted())
            for value in bindings
        ]
        prepared_seconds = time.perf_counter() - started
    prepared_stats = prepared_db.cache_stats()

    assert prepared_results == raw_results  # identical answers, binding by binding
    return {
        "bindings": NUM_BINDINGS,
        "distinct_constants": len(set(bindings)),
        "raw_s": round(raw_seconds, 6),
        "prepared_s": round(prepared_seconds, 6),
        "speedup_prepared_vs_raw": round(raw_seconds / prepared_seconds, 2),
        "raw_plan_cache": {
            "hits": raw_stats["hits"], "misses": raw_stats["misses"]
        },
        "prepared_plan_cache": {
            "hits": prepared_stats["hits"], "misses": prepared_stats["misses"]
        },
    }


def test_prepared_query_plans_exactly_once(measured) -> None:
    """The acceptance property, measured on a real workload: one plan, N-1+ hits."""
    assert measured["prepared_plan_cache"]["misses"] == 1
    assert measured["prepared_plan_cache"]["hits"] >= NUM_BINDINGS - 1


def test_raw_constant_varying_texts_never_hit(measured) -> None:
    """Distinct constants defeat a text-keyed cache beyond exact repeats."""
    # Only byte-identical repeats can hit; the distinct constants all miss.
    assert measured["raw_plan_cache"]["misses"] >= measured["distinct_constants"]


def test_prepared_is_faster_than_raw(measured) -> None:
    """Skipping parse/plan/optimize per request must be a measurable win."""
    assert measured["speedup_prepared_vs_raw"] > 1.0


def test_report(measured) -> None:
    hit_rate = measured["prepared_plan_cache"]["hits"] / measured["bindings"]
    print(
        f"\nprepared-vs-raw over {measured['bindings']} bindings "
        f"({measured['distinct_constants']} distinct constants): "
        f"raw {measured['raw_s'] * 1e3:.1f} ms, "
        f"prepared {measured['prepared_s'] * 1e3:.1f} ms "
        f"({measured['speedup_prepared_vs_raw']}x, "
        f"plan-cache hit rate {hit_rate:.1%})"
    )


@pytest.fixture(scope="module", autouse=True)
def merge_into_engine_trajectory(measured) -> None:
    """Merge the ``prepared_queries`` section into BENCH_engine.json.

    The executor benchmark owns the file (it rewrites it wholesale); this
    module runs after it alphabetically and merges its own section in,
    preserving whatever else the file holds.  When the file is absent or
    unreadable a minimal skeleton is created, so the module also works
    standalone.
    """
    yield
    path = _REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {"benchmark": "executor-materialize-vs-pipeline", "entries": []}
    payload["prepared_queries"] = {
        "mode": "quick" if quick_mode() else "full",
        "note": (
            "constant-varying lookup workload: N raw texts (plan cache "
            "misses every distinct constant) vs one prepared $name query "
            "(planned once, every binding a hit); identical results asserted"
        ),
        **measured,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
