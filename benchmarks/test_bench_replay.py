"""E-S6 — trace replay: differential correctness gate plus honest tail latency.

The replay harness (PERFORMANCE.md, "Recording and replaying query streams")
exists to answer two questions at once about any serving-layer change:

* **did the answers change?** — every event's canonical rendering is hashed
  and diffed byte-for-byte against the baseline configuration's replay;
* **did the tail move?** — per-event latency (queue wait + execution, what a
  closed-loop client observes) lands in a log-bucketed histogram whose
  p50/p95/p99 goes into ``BENCH_replay.json``.

This session generates a deterministic LDBC-interactive-style trace
(:func:`repro.bench.replay.generate_ldbc_trace` — weighted short reads,
friend-of-friend expansions, a capped shortest-path probe, a heavier scan)
and replays it under three configurations of :class:`~repro.service.QueryService`:

* ``serial`` — 0 workers, the inline baseline every diff is computed against;
* ``threads-2`` — the default serving configuration;
* ``process-2`` — forked workers (real CPU parallelism on multi-core hosts;
  on the 1-CPU container this trajectory was recorded on, an honest loss to
  fork/IPC overhead — the host block in the JSON metadata says which).

The differential gate must come back clean (``identical: true``) for the
timings to count; a corruption smoke-check then proves the gate *can* fail
(an injected wrong answer is flagged at its exact event index), so a green
report means something.
"""

from __future__ import annotations

import os
from pathlib import Path as FilePath

import pytest

from repro.bench.replay import (
    ReplayConfig,
    generate_ldbc_trace,
    run_replay,
)
from repro.bench.reporting import print_table
from repro.bench.workloads import quick_mode
from repro.datasets.ldbc import LDBCParameters

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

NUM_EVENTS = 16 if quick_mode() else 60
PARAMETERS = LDBCParameters(num_persons=50, num_messages=100, seed=42)
CONFIGS = (
    ReplayConfig(name="serial", execution_mode="threads", workers=0),
    ReplayConfig(name="threads-2", execution_mode="threads", workers=2),
    ReplayConfig(name="process-2", execution_mode="processes", workers=2),
)


@pytest.fixture(scope="module")
def report() -> dict:
    trace = generate_ldbc_trace(
        num_events=NUM_EVENTS, seed=7, parameters=PARAMETERS
    )
    return run_replay(
        trace,
        list(CONFIGS),
        json_path=str(_REPO_ROOT / "BENCH_replay.json"),
    )


@pytest.mark.quick
def test_all_configurations_agree_byte_for_byte(report) -> None:
    """The gate itself: every configuration reproduces the baseline exactly."""
    assert report["identical"] is True, report["diffs"]
    assert report["baseline"] == "serial"
    for name, mismatches in report["diffs"].items():
        assert mismatches == [], name


@pytest.mark.quick
def test_report_covers_every_configuration(report) -> None:
    names = [entry["config"] for entry in report["entries"]]
    assert names == [config.name for config in CONFIGS]
    for entry in report["entries"]:
        assert entry["events"] == NUM_EVENTS
        assert entry["failures"] == 0
        assert entry["throughput_qps"] > 0
        assert entry["latency_p99_ms"] >= entry["latency_p95_ms"] >= entry["latency_p50_ms"]


@pytest.mark.quick
def test_gate_catches_an_injected_wrong_answer(report) -> None:
    """A green gate is only evidence if the gate can go red: corrupt one
    event's rendering and demand the diff names exactly that event."""
    trace = generate_ldbc_trace(num_events=8, seed=7, parameters=PARAMETERS)

    def corrupt(rendering: str, event) -> str:
        return rendering + "\n(bogus)" if event.index == 3 else rendering

    poisoned = run_replay(
        trace,
        [
            ReplayConfig(name="honest", workers=0),
            ReplayConfig(name="buggy", workers=0, result_transform=corrupt),
        ],
    )
    assert poisoned["identical"] is False
    assert [record["index"] for record in poisoned["diffs"]["buggy"]] == [3]


@pytest.fixture(scope="module", autouse=True)
def print_report(report) -> None:
    yield
    print_table(
        ["config", "mode", "workers", "qps", "p50 ms", "p95 ms", "p99 ms", "failures"],
        [
            (
                entry["config"],
                entry["execution_mode"],
                entry["workers"],
                entry["throughput_qps"],
                entry["latency_p50_ms"],
                entry["latency_p95_ms"],
                entry["latency_p99_ms"],
                entry["failures"],
            )
            for entry in report["entries"]
        ],
        title=(
            f"Trace replay ({NUM_EVENTS} LDBC-interactive events, "
            f"{len(os.sched_getaffinity(0)) if hasattr(os, 'sched_getaffinity') else os.cpu_count()} CPU)"
        ),
    )
