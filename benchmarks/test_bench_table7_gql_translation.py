"""E-T7 — Table 7: translating GQL selector/restrictor expressions into the algebra.

Regenerates Table 7: for every selector combined with the WALK restrictor the
harness builds the algebra expression the table prescribes, checks its
notation, and evaluates it on the Figure 1 graph; the remaining 21
selector × restrictor combinations (Section 6 says all 28 are expressible)
are also planned and executed.  The benchmark measures plan construction plus
evaluation per combination.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Selection
from repro.algebra.printer import to_algebra_notation
from repro.bench.reporting import format_table
from repro.semantics.restrictors import Restrictor
from repro.semantics.selectors import Selector, SelectorKind
from repro.semantics.translate import (
    all_selector_restrictor_combinations,
    translate_selector_restrictor,
)

WALK_BOUND = 5

#: The algebra expressions of Table 7 (with RE = σ[label(edge(1))='Knows'](Edges(G))).
TABLE7_EXPECTED_NOTATION = {
    "ALL": "π(*,*,*)(γ(ϕWalk,≤5(RE)))",
    "ANY SHORTEST": "π(*,*,1)(τA(γST(ϕWalk,≤5(RE))))",
    "ALL SHORTEST": "π(*,1,*)(τG(γSTL(ϕWalk,≤5(RE))))",
    "ANY": "π(*,*,1)(γST(ϕWalk,≤5(RE)))",
    "ANY 2": "π(*,*,2)(γST(ϕWalk,≤5(RE)))",
    "SHORTEST 2": "π(*,*,2)(τA(γST(ϕWalk,≤5(RE))))",
    "SHORTEST 2 GROUP": "π(*,2,*)(τG(γSTL(ϕWalk,≤5(RE))))",
}

RE_NOTATION = "σ[label(edge(1)) = 'Knows'](Edges(G))"


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def _selectors() -> list[Selector]:
    return [
        Selector(SelectorKind.ALL),
        Selector(SelectorKind.ANY_SHORTEST),
        Selector(SelectorKind.ALL_SHORTEST),
        Selector(SelectorKind.ANY),
        Selector(SelectorKind.ANY_K, 2),
        Selector(SelectorKind.SHORTEST_K, 2),
        Selector(SelectorKind.SHORTEST_K_GROUP, 2),
    ]


@pytest.mark.parametrize("selector", _selectors(), ids=[str(s) for s in _selectors()])
def test_table7_walk_row(benchmark, figure1, selector) -> None:
    def plan_and_run():
        plan = translate_selector_restrictor(
            selector, Restrictor.WALK, knows_scan(), already_recursive=False, max_length=WALK_BOUND
        )
        return plan, evaluate_to_paths(plan, figure1)

    plan, result = benchmark(plan_and_run)
    expected = TABLE7_EXPECTED_NOTATION[str(selector)].replace("RE", RE_NOTATION)
    assert to_algebra_notation(plan) == expected
    assert len(result) > 0


def test_table7_all_28_combinations(benchmark, figure1) -> None:
    """All 28 selector × restrictor combinations plan and evaluate (Section 6)."""

    def run_all():
        results = {}
        for selector, restrictor in all_selector_restrictor_combinations():
            plan = translate_selector_restrictor(
                selector, restrictor, knows_scan(), already_recursive=False, max_length=WALK_BOUND
            )
            results[(str(selector), restrictor.value)] = len(evaluate_to_paths(plan, figure1))
        return results

    results = benchmark(run_all)
    assert len(results) == 28
    assert all(count > 0 for count in results.values())


def test_table7_report(figure1) -> None:
    """Print the regenerated Table 7 plus result sizes per combination."""
    rows = []
    for selector in _selectors():
        plan = translate_selector_restrictor(
            selector, Restrictor.WALK, knows_scan(), already_recursive=False, max_length=WALK_BOUND
        )
        rows.append(
            (
                f"{selector} WALK ppe",
                to_algebra_notation(plan).replace(RE_NOTATION, "RE"),
                len(evaluate_to_paths(plan, figure1)),
            )
        )
    print()
    print(
        format_table(
            ["GQL expression", "Path algebra expression", "|result|"],
            rows,
            title="Table 7 — selector translation (WALK restrictor, bounded to length 5)",
        )
    )
