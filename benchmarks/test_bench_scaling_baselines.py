"""E-S1 — scaling: the algebra evaluator vs. classical RPQ algorithms.

The paper has no performance study; this added experiment quantifies the gap
its Section 8 discussion predicts: specialized algorithms (traversal with NFA
simulation, automaton product BFS, boolean matrix closure) are faster per
query, while the algebraic evaluator returns full paths and composes with the
rest of the algebra.  Each benchmark evaluates the same ``Knows+`` query under
ACYCLIC semantics on random graphs of increasing size; agreement between
approaches is asserted.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_to_paths
from repro.baselines.automaton_eval import evaluate_rpq_pairs
from repro.baselines.matrix import MatrixRPQEvaluator
from repro.baselines.traversal import TraversalOptions, evaluate_rpq_traversal
from repro.bench.reporting import format_table
from repro.datasets.generators import random_graph
from repro.rpq.compile import CompileOptions, compile_regex
from repro.semantics.restrictors import Restrictor

REGEX = "Knows+"
SIZES = (50, 100, 200)


def _graph(size: int):
    return random_graph(size, int(1.5 * size), labels=("Knows", "Likes"), seed=13, name=f"rand{size}")


@pytest.fixture(scope="module")
def graphs():
    return {size: _graph(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_scaling_algebra(benchmark, graphs, size) -> None:
    graph = graphs[size]
    plan = compile_regex(REGEX, CompileOptions(restrictor=Restrictor.ACYCLIC))
    result = benchmark(evaluate_to_paths, plan, graph)
    assert len(result) > 0


@pytest.mark.parametrize("size", SIZES)
def test_scaling_traversal_baseline(benchmark, graphs, size) -> None:
    graph = graphs[size]
    result = benchmark(
        evaluate_rpq_traversal, graph, REGEX, TraversalOptions(restrictor=Restrictor.ACYCLIC)
    )
    plan = compile_regex(REGEX, CompileOptions(restrictor=Restrictor.ACYCLIC))
    assert result == evaluate_to_paths(plan, graph)


@pytest.mark.parametrize("size", SIZES)
def test_scaling_automaton_baseline(benchmark, graphs, size) -> None:
    graph = graphs[size]
    result = benchmark(evaluate_rpq_pairs, graph, REGEX)
    assert len(result.pairs) > 0


@pytest.mark.parametrize("size", SIZES)
def test_scaling_matrix_baseline(benchmark, graphs, size) -> None:
    graph = graphs[size]
    evaluator = MatrixRPQEvaluator(graph)
    pairs = benchmark(evaluator.pairs, REGEX)
    assert pairs == evaluate_rpq_pairs(graph, REGEX).pairs


def test_scaling_report(graphs) -> None:
    """Print result sizes per approach and graph size (pairs vs. full paths)."""
    rows = []
    for size, graph in graphs.items():
        plan = compile_regex(REGEX, CompileOptions(restrictor=Restrictor.ACYCLIC))
        paths = evaluate_to_paths(plan, graph)
        pairs = evaluate_rpq_pairs(graph, REGEX).pairs
        rows.append((size, graph.num_edges(), len(paths), len(pairs)))
    print()
    print(
        format_table(
            ["nodes", "edges", "acyclic Knows+ paths (algebra)", "reachable pairs (baselines)"],
            rows,
            title="E-S1 — workload sizes for the algebra vs. baseline scaling benchmark",
        )
    )
    # Full path enumeration returns at least as many results as pair reachability.
    for row in rows:
        assert row[2] >= row[3]
