"""E-T2 — Table 2: the GQL restrictors (WALK, TRAIL, ACYCLIC, SIMPLE) plus SHORTEST.

Regenerates Table 2 by evaluating ϕ under each restrictor over the Knows edges
of Figure 1 and reporting the result size and the structural property each
restrictor guarantees.  The benchmark measures the recursion cost per
restrictor (the walk variant uses a length bound, mirroring the paper's remark
that bare WALK does not terminate on this cyclic graph).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.paths.predicates import is_acyclic, is_simple, is_trail
from repro.semantics.restrictors import Restrictor, recursive_closure

WALK_BOUND = 6

CASES = [
    (Restrictor.WALK, "no filtering (bounded to length 6 here)", None),
    (Restrictor.TRAIL, "no repeated edges", is_trail),
    (Restrictor.ACYCLIC, "no repeated nodes", is_acyclic),
    (Restrictor.SIMPLE, "no repeated nodes except first = last", is_simple),
    (Restrictor.SHORTEST, "minimum length per endpoint pair", None),
]


@pytest.mark.parametrize("restrictor, informal, predicate", CASES, ids=[c[0].value for c in CASES])
def test_table2_restrictor_semantics(benchmark, knows_edges, restrictor, informal, predicate) -> None:
    max_length = WALK_BOUND if restrictor is Restrictor.WALK else None
    result = benchmark(recursive_closure, knows_edges, restrictor, max_length)
    assert len(result) > 0
    if predicate is not None:
        assert all(predicate(path) for path in result)
    if restrictor is Restrictor.SHORTEST:
        best = {}
        for path in result:
            best.setdefault(path.endpoints(), path.len())
            assert path.len() == best[path.endpoints()]


def test_table2_report(knows_edges) -> None:
    """Print the regenerated Table 2 with result sizes on the Figure 1 graph."""
    rows = []
    for restrictor, informal, _ in CASES:
        max_length = WALK_BOUND if restrictor is Restrictor.WALK else None
        result = recursive_closure(knows_edges, restrictor, max_length)
        rows.append((restrictor.value, informal, len(result)))
    print()
    print(
        format_table(
            ["Restrictor", "Informal semantics (Table 2)", "|ϕ(Knows edges)|"],
            rows,
            title="Table 2 — restrictors over the Figure 1 Knows edges",
        )
    )
    sizes = {row[0]: row[2] for row in rows}
    # The restricted variants return subsets of the (bounded) walk closure.
    assert sizes["ACYCLIC"] <= sizes["SIMPLE"] <= sizes["TRAIL"]
    assert sizes["SHORTEST"] <= sizes["TRAIL"]
