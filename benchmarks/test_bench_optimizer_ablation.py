"""E-S2 — optimizer ablation: rewrite rules on vs. off across label selectivities.

DESIGN.md calls out two design decisions for ablation: selection pushdown
(Figure 6) and the walk-to-shortest rewrite (Section 7.3).  This experiment
measures both on synthetic graphs whose label selectivity varies, comparing
the optimized and unoptimized plans' evaluation cost and intermediate result
counts; results must agree in every configuration.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge, prop_of_first
from repro.algebra.evaluator import Evaluator
from repro.algebra.expressions import (
    EdgesScan,
    GroupBy,
    Join,
    OrderBy,
    Projection,
    Recursive,
    Selection,
)
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.bench.reporting import format_table
from repro.bench.workloads import selectivity_workloads
from repro.optimizer.engine import optimize
from repro.semantics.restrictors import Restrictor

WORKLOADS = {workload.name: workload for workload in selectivity_workloads(num_nodes=100, seed=11)}


def pushdown_plan() -> Selection:
    knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
    return Selection(prop_of_first("name", "p1"), Join(knows, knows))


def any_shortest_walk_plan(max_length: int | None = 4) -> Projection:
    knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
    return Projection(
        OrderBy(GroupBy(Recursive(knows, Restrictor.WALK, max_length), GroupByKey.ST), OrderByKey.A),
        ProjectionSpec("*", "*", 1),
    )


@pytest.fixture(scope="module")
def graphs():
    return {name: workload.build_graph() for name, workload in WORKLOADS.items()}


@pytest.mark.parametrize("name", list(WORKLOADS), ids=list(WORKLOADS))
def test_pushdown_off(benchmark, graphs, name) -> None:
    graph = graphs[name]
    plan = pushdown_plan()
    result = benchmark(lambda: Evaluator(graph).evaluate_paths(plan))
    assert result == Evaluator(graph).evaluate_paths(optimize(plan).optimized)


@pytest.mark.parametrize("name", list(WORKLOADS), ids=list(WORKLOADS))
def test_pushdown_on(benchmark, graphs, name) -> None:
    graph = graphs[name]
    optimized = optimize(pushdown_plan()).optimized
    benchmark(lambda: Evaluator(graph).evaluate_paths(optimized))


@pytest.mark.parametrize("name", list(WORKLOADS), ids=list(WORKLOADS))
def test_walk_to_shortest_off(benchmark, graphs, name) -> None:
    graph = graphs[name]
    plan = any_shortest_walk_plan(max_length=4)
    result = benchmark(lambda: Evaluator(graph).evaluate_paths(plan))
    assert len(result) > 0


@pytest.mark.parametrize("name", list(WORKLOADS), ids=list(WORKLOADS))
def test_walk_to_shortest_on(benchmark, graphs, name) -> None:
    graph = graphs[name]
    optimized = optimize(any_shortest_walk_plan(max_length=4)).optimized
    result = benchmark(lambda: Evaluator(graph).evaluate_paths(optimized))
    assert len(result) > 0


def test_ablation_report(graphs) -> None:
    """Print intermediate-result counts with each rule on/off per selectivity mix."""
    rows = []
    for name, graph in graphs.items():
        pushdown_off = Evaluator(graph)
        pushdown_off.evaluate_paths(pushdown_plan())
        pushdown_on = Evaluator(graph)
        pushdown_on.evaluate_paths(optimize(pushdown_plan()).optimized)

        walk_off = Evaluator(graph)
        walk_off_result = walk_off.evaluate_paths(any_shortest_walk_plan(max_length=4))
        walk_on = Evaluator(graph)
        walk_on_result = walk_on.evaluate_paths(optimize(any_shortest_walk_plan(max_length=4)).optimized)

        rows.append(
            (
                name,
                pushdown_off.statistics.intermediate_paths,
                pushdown_on.statistics.intermediate_paths,
                walk_off.statistics.intermediate_paths,
                walk_on.statistics.intermediate_paths,
            )
        )
        # The bounded WALK pipeline and the SHORTEST pipeline agree on the
        # shortest-path answers they return per endpoint pair.
        assert {p.endpoints() for p in walk_on_result} == {p.endpoints() for p in walk_off_result}

    print()
    print(
        format_table(
            [
                "workload",
                "pushdown OFF (paths)",
                "pushdown ON (paths)",
                "ϕWalk≤4 pipeline (paths)",
                "ϕShortest pipeline (paths)",
            ],
            rows,
            title="E-S2 — optimizer ablation: intermediate result counts",
        )
    )
    for row in rows:
        assert row[2] <= row[1]
