"""E-F2 — Figure 2: the recursive plan of the introduction's Moe-to-Apu query.

Regenerates Figure 2: the algebraic plan
``σ[first.name='Moe' ∧ last.name='Apu']( ϕ(Knows) ∪ ϕ(Likes ⋈ Has_creator) )``
is built exactly as drawn, evaluated under ϕSimple (the paper explains that
the default ϕWalk does not terminate on this cyclic graph), and the result is
checked against the two simple paths the introduction quotes.  The benchmark
measures plan evaluation through the GQL front end and through a hand-built
plan.
"""

from __future__ import annotations

from repro.algebra.conditions import label_of_edge, prop_of_first, prop_of_last
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Join, Recursive, Selection, Union
from repro.bench.reporting import format_table
from repro.engine.engine import PathQueryEngine
from repro.errors import NonTerminatingQueryError
from repro.semantics.restrictors import Restrictor

INTRO_QUERY = (
    'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
    '(?y {name: "Apu"})'
)

EXPECTED_PATHS = {
    ("n1", "e1", "n2", "e4", "n4"),
    ("n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4"),
}


def figure2_plan(restrictor: Restrictor) -> Selection:
    knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
    likes = Selection(label_of_edge(1, "Likes"), EdgesScan())
    creator = Selection(label_of_edge(1, "Has_creator"), EdgesScan())
    return Selection(
        prop_of_first("name", "Moe") & prop_of_last("name", "Apu"),
        Union(
            Recursive(knows, restrictor),
            Recursive(Join(likes, creator), restrictor),
        ),
    )


def test_figure2_hand_built_plan(benchmark, figure1) -> None:
    plan = figure2_plan(Restrictor.SIMPLE)
    result = benchmark(evaluate_to_paths, plan, figure1)
    assert {path.interleaved() for path in result} == EXPECTED_PATHS


def test_figure2_through_gql_front_end(benchmark, figure1) -> None:
    # Plan caching is disabled so every iteration measures the full
    # parse/plan/optimize/execute path (cache hits are measured separately
    # by test_bench_executor_pipeline).
    engine = PathQueryEngine(figure1, plan_cache_size=0)
    result = benchmark(lambda: engine.query(INTRO_QUERY))
    assert {path.interleaved() for path in result.paths} == EXPECTED_PATHS


def test_figure2_walk_semantics_does_not_terminate(figure1) -> None:
    """The paper's point: under arbitrary (WALK) semantics the query has infinite answers."""
    plan = figure2_plan(Restrictor.WALK)
    try:
        evaluate_to_paths(plan, figure1)
        raise AssertionError("unbounded ϕWalk over the cyclic Figure 1 graph must be rejected")
    except NonTerminatingQueryError:
        pass


def test_figure2_report(figure1) -> None:
    """Print the Figure 2 reproduction: restrictor choice vs. result."""
    rows = []
    for restrictor in (Restrictor.SIMPLE, Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SHORTEST):
        result = evaluate_to_paths(figure2_plan(restrictor), figure1)
        rows.append((f"ϕ{restrictor.value.title()}", len(result), "; ".join(str(p) for p in result.sorted())))
    print()
    print(
        format_table(
            ["Recursive operator", "|paths Moe→Apu|", "paths"],
            rows,
            title="Figure 2 — the introduction's query under different ϕ variants",
        )
    )
    simple_paths = evaluate_to_paths(figure2_plan(Restrictor.SIMPLE), figure1)
    assert {p.interleaved() for p in simple_paths} == EXPECTED_PATHS
