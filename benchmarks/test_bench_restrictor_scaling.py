"""E-S3 — restrictor cost profile: pruning inside ϕ vs. enumerate-then-filter.

DESIGN.md design decision 1: the production evaluator prunes non-conforming
paths *during* the fix point, while the reference strategy enumerates bounded
walks and filters afterwards.  This experiment measures both strategies for
each restrictor on cyclic graphs, layered DAGs and dense cliques of
increasing size, asserts they agree, and reports how the restrictor choice
affects the result size (the shape the paper's Section 4 discussion predicts:
Walk ⊇ Trail ⊇ Acyclic, Shortest smallest).

The clique tier stresses the restrictor *checks* themselves: almost every
frontier extension is rejected, which is exactly the case the incremental
closure engine (PERFORMANCE.md) turns from an O(path length) re-scan into an
O(1) probe.  The smallest size of every tier carries the ``quick`` marker and
is the only size run under ``BENCH_QUICK=1``.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import select_sizes
from repro.datasets.generators import complete_graph, cycle_graph, layered_graph
from repro.paths.pathset import PathSet
from repro.semantics.restrictors import (
    Restrictor,
    recursive_closure,
    recursive_closure_baseline,
    recursive_closure_postfilter,
)

CYCLE_SIZES = (4, 8, 16)
CLIQUE_SIZES = (4, 5, 6)
POSTFILTER_BOUND = 8
RESTRICTORS = (Restrictor.TRAIL, Restrictor.ACYCLIC, Restrictor.SIMPLE, Restrictor.SHORTEST)


def _sized_params(sizes):
    """Mark the smallest size of a tier as the quick-mode representative."""
    selected = select_sizes(sizes)
    return [
        pytest.param(size, marks=pytest.mark.quick) if index == 0 else size
        for index, size in enumerate(selected)
    ]


@pytest.fixture(scope="module")
def cycle_bases():
    return {size: PathSet.edges_of(cycle_graph(size)) for size in CYCLE_SIZES}


@pytest.fixture(scope="module")
def clique_bases():
    return {size: PathSet.edges_of(complete_graph(size)) for size in CLIQUE_SIZES}


@pytest.fixture(scope="module")
def dag_base():
    return PathSet.edges_of(layered_graph(layers=5, width=4, fanout=2, seed=3))


@pytest.mark.parametrize("size", _sized_params(CYCLE_SIZES))
@pytest.mark.parametrize("restrictor", RESTRICTORS, ids=[r.value for r in RESTRICTORS])
def test_pruned_closure_on_cycles(benchmark, cycle_bases, size, restrictor) -> None:
    base = cycle_bases[size]
    result = benchmark(recursive_closure, base, restrictor)
    assert len(result) > 0


@pytest.mark.parametrize("size", _sized_params(CLIQUE_SIZES))
@pytest.mark.parametrize("restrictor", RESTRICTORS, ids=[r.value for r in RESTRICTORS])
def test_pruned_closure_on_cliques(benchmark, clique_bases, size, restrictor) -> None:
    """Dense tier: out-degree n-1 everywhere, so restrictor checks dominate.

    The bound ``n - 1`` covers every acyclic/simple path and keeps the Trail
    closure tractable on the larger cliques.
    """
    base = clique_bases[size]
    result = benchmark(recursive_closure, base, restrictor, size - 1)
    assert len(result) > 0


@pytest.mark.parametrize("restrictor", RESTRICTORS, ids=[r.value for r in RESTRICTORS])
def test_incremental_equals_baseline_on_largest_clique(clique_bases, restrictor) -> None:
    """The incremental engine and the per-round-rebuild baseline agree exactly."""
    size = max(CLIQUE_SIZES)
    base = clique_bases[size]
    assert recursive_closure(base, restrictor, size - 1) == recursive_closure_baseline(
        base, restrictor, size - 1
    )


@pytest.mark.parametrize("restrictor", RESTRICTORS, ids=[r.value for r in RESTRICTORS])
def test_postfilter_closure_on_cycle8(benchmark, cycle_bases, restrictor) -> None:
    """The enumerate-then-filter strategy pays the walk-closure cost regardless of restrictor."""
    base = cycle_bases[8]
    result = benchmark(recursive_closure_postfilter, base, restrictor, POSTFILTER_BOUND)
    pruned = recursive_closure(base, restrictor, max_length=POSTFILTER_BOUND)
    assert result == pruned


@pytest.mark.parametrize("restrictor", RESTRICTORS, ids=[r.value for r in RESTRICTORS])
def test_pruned_closure_on_dag(benchmark, dag_base, restrictor) -> None:
    result = benchmark(recursive_closure, dag_base, restrictor)
    assert len(result) > 0


def test_restrictor_scaling_report(cycle_bases, dag_base) -> None:
    """Print result sizes per restrictor and graph (the who-wins shape of Section 4)."""
    rows = []
    for size, base in cycle_bases.items():
        counts = {
            restrictor.value: len(recursive_closure(base, restrictor)) for restrictor in RESTRICTORS
        }
        walk_bounded = len(recursive_closure(base, Restrictor.WALK, max_length=size))
        rows.append(
            (
                f"cycle-{size}",
                walk_bounded,
                counts["TRAIL"],
                counts["ACYCLIC"],
                counts["SIMPLE"],
                counts["SHORTEST"],
            )
        )
    dag_counts = {
        restrictor.value: len(recursive_closure(dag_base, restrictor)) for restrictor in RESTRICTORS
    }
    rows.append(
        (
            "layered-DAG(5x4)",
            len(recursive_closure(dag_base, Restrictor.WALK)),
            dag_counts["TRAIL"],
            dag_counts["ACYCLIC"],
            dag_counts["SIMPLE"],
            dag_counts["SHORTEST"],
        )
    )
    print()
    print(
        format_table(
            ["graph", "Walk (bounded)", "Trail", "Acyclic", "Simple", "Shortest"],
            rows,
            title="E-S3 — closure sizes per restrictor",
        )
    )
    for row in rows:
        # Acyclic ⊆ Simple ⊆ Trail and Shortest never exceeds Trail.
        assert row[3] <= row[4] <= row[2]
        assert row[5] <= row[2]
