"""E-T1 — Table 1: the seven GQL selectors and their semantics.

Regenerates Table 1 by applying every selector to the ϕTrail(Knows+) answer
set of the Figure 1 graph and reporting, per selector, how many paths are
returned, whether the result is deterministic, and whether the informal
semantics of the table holds (checked by assertions).  The benchmark measures
the cost of the selector pipeline (group-by + order-by + projection).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.semantics.restrictors import Restrictor, recursive_closure
from repro.semantics.selectors import Selector, SelectorKind, apply_selector

SELECTORS = [
    Selector(SelectorKind.ALL),
    Selector(SelectorKind.ANY_SHORTEST),
    Selector(SelectorKind.ALL_SHORTEST),
    Selector(SelectorKind.ANY),
    Selector(SelectorKind.ANY_K, 2),
    Selector(SelectorKind.SHORTEST_K, 2),
    Selector(SelectorKind.SHORTEST_K_GROUP, 2),
]


@pytest.fixture(scope="module")
def knows_trails(knows_edges):
    return recursive_closure(knows_edges, Restrictor.TRAIL)


def _check_selector_semantics(selector: Selector, paths, result) -> None:
    """Assert the informal Table 1 semantics for the given selector."""
    by_pair = paths.group_by_endpoints()
    if selector.kind is SelectorKind.ALL:
        assert result == paths
    elif selector.kind is SelectorKind.ANY_SHORTEST:
        assert len(result) == len(by_pair)
        for path in result:
            assert path.len() == min(p.len() for p in by_pair[path.endpoints()])
    elif selector.kind is SelectorKind.ALL_SHORTEST:
        expected = sum(
            sum(1 for p in group if p.len() == min(q.len() for q in group))
            for group in by_pair.values()
        )
        assert len(result) == expected
    elif selector.kind is SelectorKind.ANY:
        assert len(result) == len(by_pair)
    elif selector.kind is SelectorKind.ANY_K:
        assert len(result) == sum(min(selector.k, len(group)) for group in by_pair.values())
    elif selector.kind is SelectorKind.SHORTEST_K:
        for pair, group in by_pair.items():
            selected = sorted(p.len() for p in result if p.endpoints() == pair)
            assert selected == sorted(p.len() for p in group)[: min(selector.k, len(group))]
    elif selector.kind is SelectorKind.SHORTEST_K_GROUP:
        for pair, group in by_pair.items():
            lengths = sorted({p.len() for p in group})[: selector.k]
            expected = [p for p in group if p.len() in lengths]
            assert len([p for p in result if p.endpoints() == pair]) == len(expected)


@pytest.mark.parametrize("selector", SELECTORS, ids=[str(s) for s in SELECTORS])
def test_table1_selector_semantics(benchmark, knows_trails, selector) -> None:
    result = benchmark(apply_selector, knows_trails, selector)
    _check_selector_semantics(selector, knows_trails, result)


def test_table1_report(knows_trails) -> None:
    """Print the regenerated Table 1 (selector, determinism, result size)."""
    rows = []
    for selector in SELECTORS:
        result = apply_selector(knows_trails, selector)
        rows.append(
            (
                str(selector),
                "deterministic" if selector.kind.is_deterministic else "non-deterministic",
                len(result),
            )
        )
    print()
    print(
        format_table(
            ["Selector", "Determinism (Table 1)", "|paths| over ϕTrail(Knows+)"],
            rows,
            title="Table 1 — selectors applied to the Figure 1 Knows+ trails",
        )
    )
    all_count = rows[0][2]
    assert all(row[2] <= all_count for row in rows)
