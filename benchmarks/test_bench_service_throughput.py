"""E-S5 — query-service throughput: serial engine vs concurrent QueryService.

The serving layer (PERFORMANCE.md, "Serving queries concurrently") pins every
submitted query to a graph snapshot and shares a lock-striped plan cache and
a version-keyed result cache across its workers.  This experiment measures a
read-only batch two ways on the :func:`repro.bench.workloads.service_workloads`
pair:

* **cache-hot** — the batch repeats a small hot set of queries; the service's
  result cache collapses the duplicates to one evaluation per distinct query
  and graph version, which is where the throughput win comes from (CPython's
  GIL means worker threads add isolation and overlap, not CPU parallelism —
  the host this trajectory was recorded on has a single core);
* **cache-cold** — every query is distinct, exposing the service's raw
  per-query overhead (snapshots, queue handoff, ticket resolution) with no
  reuse to hide behind.

Each workload runs through a bare :class:`PathQueryEngine` loop (the
"serial" baseline: no serving layer, plan cache enabled) and through
:class:`QueryService` instances with 0, 2, 4 and 8 thread workers.  Every
service run is checked path-for-path against the serial results before its
timing counts.

Since the process pool landed, the same workloads also run under
``execution_mode="processes"`` with 2 and 4 forked workers (``process-N``
rows) and under ``execution_mode="race"`` (``race-N`` rows, with per-query
winner attribution).  Process workers sidestep the GIL entirely, so the
cache-cold ``speedup_vs_serial`` of the ``process-N`` rows is the number
this benchmark exists to demonstrate — on a multi-core host.  On a 1-CPU
container the fork/IPC overhead makes those same rows honest losses; the
host block in the JSON header records which situation applies.

Two durability-era measurements ride along (PERFORMANCE.md, "Durability and
delta-aware invalidation"):

* **mixed-read-write** — one deterministic schedule of hot reads and
  mostly-disjoint writes replayed under ``invalidation="version"`` and
  ``invalidation="delta"``; the reported metric is the result-cache hit
  rate, and every read is checked byte-for-byte against a cache-free
  reference replay of the same schedule;
* **wal-fsync** — per-mutation append latency of a :class:`DurableStore`
  under each fsync policy, so the durability cost of ``always`` is on the
  record next to the cache wins.

The session writes ``BENCH_service.json`` at the repo root with the
timings, throughputs, speedups and hit rates.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path as FilePath

import pytest

from repro.bench.reporting import print_table, write_bench_json
from repro.bench.workloads import mixed_service_workload, quick_mode, service_workloads
from repro.engine.engine import PathQueryEngine
from repro.graph.wal import FSYNC_POLICIES, DurableStore
from repro.service import QueryService

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

WORKLOADS = service_workloads()
MIXED = mixed_service_workload()
WORKER_COUNTS = (0, 2, 4, 8)
#: (execution_mode, workers) pairs for the process-backed rows.
PROCESS_CONFIGS = (("processes", 2), ("processes", 4), ("race", 2))
REPETITIONS = 1 if quick_mode() else 2
INVALIDATION_MODES = ("version", "delta")
WAL_WRITES = 100 if quick_mode() else 400


def _serial_run(workload) -> tuple[float, list[tuple[str, ...]]]:
    """Best-of timing of a bare engine loop; returns canonical per-query results."""
    best = float("inf")
    rendered: list[tuple[str, ...]] = []
    for _ in range(REPETITIONS):
        engine = PathQueryEngine(workload.build_graph())
        started = time.perf_counter()
        results = [engine.query(text) for text in workload.queries]
        best = min(best, time.perf_counter() - started)
        rendered = [
            tuple(str(path) for path in result.paths.sorted()) for result in results
        ]
    return best, rendered


def _service_run(
    workload, workers: int, execution_mode: str = "threads"
) -> tuple[float, list[tuple[str, ...]], dict]:
    """Best-of timing of QueryService.run_batch with a fresh service per repetition.

    Service construction — including forking the worker processes under the
    process modes — is excluded from the timing (a long-lived service
    amortizes it); the result cache starts cold on every repetition, so the
    measurement covers the first-touch evaluations too.
    """
    best = float("inf")
    rendered: list[tuple[str, ...]] = []
    stats: dict = {}
    for _ in range(REPETITIONS):
        graph = workload.build_graph()
        with QueryService(
            graph, workers=workers, execution_mode=execution_mode
        ) as service:
            started = time.perf_counter()
            outcomes = service.run_batch(workload.queries)
            elapsed = time.perf_counter() - started
            snapshot = service.statistics()
        assert all(outcome.ok for outcome in outcomes), workload.name
        if elapsed < best:
            best = elapsed
            rendered = [outcome.path_strings() for outcome in outcomes]
            stats = {
                "executed": snapshot.executed,
                "result_cache_served": snapshot.result_cache_served,
                "plan_cache_hits": snapshot.plan_cache["hits"],
            }
            if execution_mode == "race":
                # Per-query winner attribution: which executor answered each
                # raced query (cache-served repeats never reach the pool).
                stats["race_wins"] = dict(snapshot.race_wins)
                stats["winner_by_query"] = [
                    outcome.executor
                    if outcome.route == "race" and not outcome.result_cache_hit
                    else "cache"
                    for outcome in outcomes
                ]
                stats["losers_cancelled"] = snapshot.pool.get("losers_cancelled", 0)
    return best, rendered, stats


def _measure_workload(workload) -> list[dict]:
    serial_s, serial_rendered = _serial_run(workload)
    entries = [
        {
            "workload": workload.name,
            "mode": "serial-engine",
            "queries": len(workload.queries),
            "unique_queries": workload.parameters["unique_queries"],
            "seconds": round(serial_s, 6),
            "qps": round(len(workload.queries) / serial_s, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for workers in WORKER_COUNTS:
        service_s, service_rendered, stats = _service_run(workload, workers)
        # Byte-identical results: the serving layer may reorder execution and
        # reuse outcomes, but every query must return exactly the serial paths.
        assert service_rendered == serial_rendered, (workload.name, workers)
        entries.append(
            {
                "workload": workload.name,
                "mode": f"service-{workers}",
                "queries": len(workload.queries),
                "unique_queries": workload.parameters["unique_queries"],
                "seconds": round(service_s, 6),
                "qps": round(len(workload.queries) / service_s, 1),
                "speedup_vs_serial": round(serial_s / service_s, 2),
                **stats,
            }
        )
    for execution_mode, workers in PROCESS_CONFIGS:
        service_s, service_rendered, stats = _service_run(
            workload, workers, execution_mode
        )
        assert service_rendered == serial_rendered, (
            workload.name,
            execution_mode,
            workers,
        )
        prefix = "race" if execution_mode == "race" else "process"
        entries.append(
            {
                "workload": workload.name,
                "mode": f"{prefix}-{workers}",
                "queries": len(workload.queries),
                "unique_queries": workload.parameters["unique_queries"],
                "seconds": round(service_s, 6),
                "qps": round(len(workload.queries) / service_s, 1),
                "speedup_vs_serial": round(serial_s / service_s, 2),
                **stats,
            }
        )
    return entries


def _apply_mixed_write(graph, step: tuple) -> None:
    kind = step[0]
    if kind == "audit-node":
        graph.add_node(step[1], "Audit")
    elif kind == "audit-edge":
        graph.add_edge(step[1], step[2], step[3], "Flagged")
    else:  # hot-edge: intersects every footprint that reads Knows
        graph.add_edge(step[1], step[2], step[3], "Knows")


def _mixed_reference() -> list[tuple[str, ...]]:
    """Replay the schedule through a cache-free engine: ground-truth reads."""
    graph = MIXED.build_graph()
    engine = PathQueryEngine(graph, plan_cache_size=0)
    rendered: list[tuple[str, ...]] = []
    for step in MIXED.parameters["steps"]:
        if step[0] == "query":
            result = engine.query(step[1])
            rendered.append(tuple(str(path) for path in result.paths.sorted()))
        else:
            _apply_mixed_write(graph, step)
    return rendered


def _mixed_run(invalidation: str) -> tuple[dict, list[tuple[str, ...]]]:
    """Replay the mixed schedule through a service under one invalidation mode."""
    graph = MIXED.build_graph()
    rendered: list[tuple[str, ...]] = []
    with QueryService(graph, workers=0, invalidation=invalidation) as service:
        started = time.perf_counter()
        for step in MIXED.parameters["steps"]:
            if step[0] == "query":
                outcome = service.submit(step[1]).result()
                assert outcome.ok, (invalidation, step)
                rendered.append(outcome.path_strings())
            else:
                _apply_mixed_write(graph, step)
        elapsed = time.perf_counter() - started
        stats = service.statistics()
    reads = MIXED.parameters["reads"]
    entry = {
        "workload": MIXED.name,
        "mode": f"invalidation-{invalidation}",
        "reads": reads,
        "writes": MIXED.parameters["writes"],
        "hot_writes": MIXED.parameters["hot_writes"],
        "seconds": round(elapsed, 6),
        "result_cache_served": stats.result_cache_served,
        "result_cache_hit_rate": round(stats.result_cache_served / reads, 3),
        "cross_version_hits": stats.result_cache_cross_version_hits,
        "delta_rejected": stats.result_cache_delta_rejected,
        "executed": stats.executed,
    }
    return entry, rendered


def _fsync_entry(policy: str) -> dict:
    """Per-mutation append latency of a DurableStore under one fsync policy."""
    with tempfile.TemporaryDirectory() as tmp:
        with DurableStore(FilePath(tmp) / "store", fsync=policy) as store:
            started = time.perf_counter()
            for index in range(WAL_WRITES):
                store.graph.add_node(f"n{index}", "Person")
            elapsed = time.perf_counter() - started
            syncs = store.wal.syncs
    return {
        "workload": "wal-fsync",
        "mode": f"fsync-{policy}",
        "writes": WAL_WRITES,
        "seconds": round(elapsed, 6),
        "micros_per_write": round(1e6 * elapsed / WAL_WRITES, 1),
        "syncs": syncs,
    }


@pytest.fixture(scope="module")
def measured() -> dict[str, list[dict]]:
    return {workload.name: _measure_workload(workload) for workload in WORKLOADS}


@pytest.fixture(scope="module")
def mixed_measured() -> dict[str, object]:
    reference = _mixed_reference()
    runs = {}
    for invalidation in INVALIDATION_MODES:
        entry, rendered = _mixed_run(invalidation)
        # Byte-identical reads: neither invalidation policy may change what a
        # query returns, only how often the cache answers it.
        assert rendered == reference, invalidation
        runs[invalidation] = entry
    return {"entries": list(runs.values()), "by_mode": runs}


@pytest.fixture(scope="module")
def fsync_measured() -> list[dict]:
    return [_fsync_entry(policy) for policy in FSYNC_POLICIES]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda workload: workload.name)
def test_service_results_match_serial(measured, workload) -> None:
    """Parity is asserted inside the measurement; this locks the rows exist."""
    entries = measured[workload.name]
    assert {entry["mode"] for entry in entries} == {
        "serial-engine",
        *(f"service-{workers}" for workers in WORKER_COUNTS),
        *(
            f"{'race' if mode == 'race' else 'process'}-{workers}"
            for mode, workers in PROCESS_CONFIGS
        ),
    }


def test_race_rows_attribute_every_query(measured) -> None:
    """Every raced query carries a winner; wins sum to the raced count."""
    for workload in WORKLOADS:
        row = next(e for e in measured[workload.name] if e["mode"] == "race-2")
        winners = row["winner_by_query"]
        assert len(winners) == row["queries"]
        raced = [winner for winner in winners if winner != "cache"]
        assert raced, row["mode"]
        assert set(raced) <= {"materialize", "pipeline"}
        assert sum(row["race_wins"].values()) == len(raced)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process parallelism needs at least two cores to beat serial",
)
def test_cache_cold_process_pool_beats_serial(measured) -> None:
    """The PR 7 acceptance measurement: real parallelism on cold traffic.

    Thread workers *lose* cache-cold (GIL: same CPU budget plus serving
    overhead).  Forked workers execute on separate cores, so with 4 of them
    the cold batch must finish faster than the bare serial loop.  Gated on
    the core count: on a 1-CPU host the row is still recorded, as an honest
    loss, but the assertion would only measure fork/IPC overhead.
    """
    four = next(
        entry for entry in measured["cache-cold"] if entry["mode"] == "process-4"
    )
    assert four["speedup_vs_serial"] > 1.0, four


@pytest.mark.quick
def test_cache_hot_service_beats_serial(measured) -> None:
    """The acceptance measurement: ≥1.5x throughput at 4 workers, cache-hot.

    On the repeat-heavy read-only batch the shared result cache serves every
    duplicate without re-evaluating, so the serving layer clears the bar even
    on a single-core host where threads cannot add CPU parallelism.
    """
    four = next(
        entry
        for entry in measured["cache-hot"]
        if entry["mode"] == "service-4"
    )
    assert four["speedup_vs_serial"] >= 1.5, four


def test_cache_cold_overhead_is_bounded(measured) -> None:
    """Cold traffic has nothing to reuse; the service must stay within 2.5x of serial."""
    for entry in measured["cache-cold"]:
        if entry["mode"].startswith("service-"):
            assert entry["seconds"] <= 2.5 * measured["cache-cold"][0]["seconds"], entry


@pytest.mark.quick
def test_delta_invalidation_beats_whole_version_hit_rate(mixed_measured) -> None:
    """The ISSUE 6 acceptance measurement: delta hit rate strictly above version.

    Under whole-version invalidation every write turns the next repeat of a
    hot query into a miss; delta-aware invalidation recomputes only when the
    write's labels intersect the query's footprint, so the mostly-disjoint
    write mix must leave it a strictly higher result-cache hit rate.
    """
    by_mode = mixed_measured["by_mode"]
    delta = by_mode["delta"]
    version = by_mode["version"]
    assert delta["result_cache_hit_rate"] > version["result_cache_hit_rate"], by_mode
    assert delta["cross_version_hits"] > 0
    # Honesty check: delta mode is not a free pass — the Knows writes in the
    # mix really do evict the footprints they touch.
    assert delta["delta_rejected"] > 0


def test_fsync_policies_are_ordered_and_counted(fsync_measured) -> None:
    """fsync=always must actually sync every write; off must never sync.

    Latency ordering between ``always`` and ``off`` is expected but not
    asserted (single-run timing on shared CI hosts is too noisy for a hard
    bound); the sync counts are deterministic and pin the policy semantics.
    """
    by_mode = {entry["mode"]: entry for entry in fsync_measured}
    assert by_mode["fsync-always"]["syncs"] == WAL_WRITES
    assert by_mode["fsync-off"]["syncs"] == 0
    assert 0 < by_mode["fsync-batch"]["syncs"] < WAL_WRITES


@pytest.fixture(scope="module", autouse=True)
def write_report(measured, mixed_measured, fsync_measured) -> None:
    yield
    entries = [entry for workload in WORKLOADS for entry in measured[workload.name]]
    entries.extend(mixed_measured["entries"])
    entries.extend(fsync_measured)
    print_table(
        ["mode", "reads", "writes", "hit_rate", "cross_version", "rejected"],
        [
            (
                e["mode"],
                e["reads"],
                e["writes"],
                e["result_cache_hit_rate"],
                e["cross_version_hits"],
                e["delta_rejected"],
            )
            for e in mixed_measured["entries"]
        ],
        title="Mixed read/write: result-cache hit rate by invalidation policy",
    )
    print_table(
        ["mode", "writes", "micros/write", "syncs"],
        [
            (e["mode"], e["writes"], e["micros_per_write"], e["syncs"])
            for e in fsync_measured
        ],
        title="WAL append latency by fsync policy",
    )
    print_table(
        ["workload", "mode", "seconds", "qps", "speedup"],
        [
            (e["workload"], e["mode"], e["seconds"], e["qps"], e["speedup_vs_serial"])
            for e in entries
            if "speedup_vs_serial" in e
        ],
        title="Query-service throughput (serial engine vs QueryService)",
    )
    write_bench_json(
        str(_REPO_ROOT / "BENCH_service.json"),
        "service-throughput",
        entries,
        metadata={
            "mode": "quick" if quick_mode() else "full",
            "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "repetitions": REPETITIONS,
            "note": (
                "thread workers provide isolation/overlap under the GIL, not CPU "
                "parallelism; the cache-hot speedup comes from the result cache "
                "collapsing duplicate queries. process-N rows fork the workers "
                "(execution_mode='processes') for real CPU parallelism; their "
                "cache-cold speedup is only meaningful on the multi-core hosts "
                "identified by metadata.host.cpus. race-N rows run materialize "
                "vs pipeline in two processes, first result wins, with "
                "per-query winner attribution. mixed-read-write replays one "
                "deterministic schedule under both invalidation policies; "
                "wal-fsync reports the per-write durability cost alongside"
            ),
        },
    )
