"""E-S5 — query-service throughput: serial engine vs concurrent QueryService.

The serving layer (PERFORMANCE.md, "Serving queries concurrently") pins every
submitted query to a graph snapshot and shares a lock-striped plan cache and
a version-keyed result cache across its workers.  This experiment measures a
read-only batch two ways on the :func:`repro.bench.workloads.service_workloads`
pair:

* **cache-hot** — the batch repeats a small hot set of queries; the service's
  result cache collapses the duplicates to one evaluation per distinct query
  and graph version, which is where the throughput win comes from (CPython's
  GIL means worker threads add isolation and overlap, not CPU parallelism —
  the host this trajectory was recorded on has a single core);
* **cache-cold** — every query is distinct, exposing the service's raw
  per-query overhead (snapshots, queue handoff, ticket resolution) with no
  reuse to hide behind.

Each workload runs through a bare :class:`PathQueryEngine` loop (the
"serial" baseline: no serving layer, plan cache enabled) and through
:class:`QueryService` instances with 0, 2, 4 and 8 workers.  Every service
run is checked path-for-path against the serial results before its timing
counts.  The session writes ``BENCH_service.json`` at the repo root with the
timings, throughputs and speedups.
"""

from __future__ import annotations

import os
import time
from pathlib import Path as FilePath

import pytest

from repro.bench.reporting import print_table, write_bench_json
from repro.bench.workloads import quick_mode, service_workloads
from repro.engine.engine import PathQueryEngine
from repro.service import QueryService

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

WORKLOADS = service_workloads()
WORKER_COUNTS = (0, 2, 4, 8)
REPETITIONS = 1 if quick_mode() else 2


def _serial_run(workload) -> tuple[float, list[tuple[str, ...]]]:
    """Best-of timing of a bare engine loop; returns canonical per-query results."""
    best = float("inf")
    rendered: list[tuple[str, ...]] = []
    for _ in range(REPETITIONS):
        engine = PathQueryEngine(workload.build_graph())
        started = time.perf_counter()
        results = [engine.query(text) for text in workload.queries]
        best = min(best, time.perf_counter() - started)
        rendered = [
            tuple(str(path) for path in result.paths.sorted()) for result in results
        ]
    return best, rendered


def _service_run(workload, workers: int) -> tuple[float, list[tuple[str, ...]], dict]:
    """Best-of timing of QueryService.run_batch with a fresh service per repetition.

    Service construction is excluded from the timing (a long-lived service
    amortizes it); the result cache starts cold on every repetition, so the
    measurement covers the first-touch evaluations too.
    """
    best = float("inf")
    rendered: list[tuple[str, ...]] = []
    stats: dict = {}
    for _ in range(REPETITIONS):
        graph = workload.build_graph()
        with QueryService(graph, workers=workers) as service:
            started = time.perf_counter()
            outcomes = service.run_batch(workload.queries)
            elapsed = time.perf_counter() - started
            snapshot = service.statistics()
        assert all(outcome.ok for outcome in outcomes), workload.name
        if elapsed < best:
            best = elapsed
            rendered = [outcome.path_strings() for outcome in outcomes]
            stats = {
                "executed": snapshot.executed,
                "result_cache_served": snapshot.result_cache_served,
                "plan_cache_hits": snapshot.plan_cache["hits"],
            }
    return best, rendered, stats


def _measure_workload(workload) -> list[dict]:
    serial_s, serial_rendered = _serial_run(workload)
    entries = [
        {
            "workload": workload.name,
            "mode": "serial-engine",
            "queries": len(workload.queries),
            "unique_queries": workload.parameters["unique_queries"],
            "seconds": round(serial_s, 6),
            "qps": round(len(workload.queries) / serial_s, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for workers in WORKER_COUNTS:
        service_s, service_rendered, stats = _service_run(workload, workers)
        # Byte-identical results: the serving layer may reorder execution and
        # reuse outcomes, but every query must return exactly the serial paths.
        assert service_rendered == serial_rendered, (workload.name, workers)
        entries.append(
            {
                "workload": workload.name,
                "mode": f"service-{workers}",
                "queries": len(workload.queries),
                "unique_queries": workload.parameters["unique_queries"],
                "seconds": round(service_s, 6),
                "qps": round(len(workload.queries) / service_s, 1),
                "speedup_vs_serial": round(serial_s / service_s, 2),
                **stats,
            }
        )
    return entries


@pytest.fixture(scope="module")
def measured() -> dict[str, list[dict]]:
    return {workload.name: _measure_workload(workload) for workload in WORKLOADS}


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda workload: workload.name)
def test_service_results_match_serial(measured, workload) -> None:
    """Parity is asserted inside the measurement; this locks the rows exist."""
    entries = measured[workload.name]
    assert {entry["mode"] for entry in entries} == {
        "serial-engine",
        *(f"service-{workers}" for workers in WORKER_COUNTS),
    }


@pytest.mark.quick
def test_cache_hot_service_beats_serial(measured) -> None:
    """The acceptance measurement: ≥1.5x throughput at 4 workers, cache-hot.

    On the repeat-heavy read-only batch the shared result cache serves every
    duplicate without re-evaluating, so the serving layer clears the bar even
    on a single-core host where threads cannot add CPU parallelism.
    """
    four = next(
        entry
        for entry in measured["cache-hot"]
        if entry["mode"] == "service-4"
    )
    assert four["speedup_vs_serial"] >= 1.5, four


def test_cache_cold_overhead_is_bounded(measured) -> None:
    """Cold traffic has nothing to reuse; the service must stay within 2.5x of serial."""
    for entry in measured["cache-cold"]:
        if entry["mode"].startswith("service-"):
            assert entry["seconds"] <= 2.5 * measured["cache-cold"][0]["seconds"], entry


@pytest.fixture(scope="module", autouse=True)
def write_report(measured) -> None:
    yield
    entries = [entry for workload in WORKLOADS for entry in measured[workload.name]]
    print_table(
        ["workload", "mode", "seconds", "qps", "speedup"],
        [
            (e["workload"], e["mode"], e["seconds"], e["qps"], e["speedup_vs_serial"])
            for e in entries
        ],
        title="Query-service throughput (serial engine vs QueryService)",
    )
    write_bench_json(
        str(_REPO_ROOT / "BENCH_service.json"),
        "service-throughput",
        entries,
        metadata={
            "mode": "quick" if quick_mode() else "full",
            "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "repetitions": REPETITIONS,
            "note": (
                "thread workers provide isolation/overlap under the GIL, not CPU "
                "parallelism; the cache-hot speedup comes from the version-keyed "
                "result cache collapsing duplicate queries"
            ),
        },
    )
