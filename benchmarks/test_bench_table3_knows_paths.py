"""E-T3 — Table 3: the Knows+ paths p1..p14 under the five path semantics.

Regenerates Table 3: for each of the fourteen paths the paper lists, the
harness reports membership in ϕWalk / ϕTrail / ϕAcyclic / ϕSimple / ϕShortest
over the Knows edges of Figure 1 and asserts the expected pattern.  The
benchmark measures the full five-way evaluation.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.paths.path import Path
from repro.semantics.restrictors import Restrictor, recursive_closure

#: The fourteen paths of Table 3, as interleaved identifier sequences.
TABLE3_PATHS = {
    "p1": ("n1", "e1", "n2"),
    "p2": ("n1", "e1", "n2", "e2", "n3", "e3", "n2"),
    "p3": ("n1", "e1", "n2", "e2", "n3"),
    "p4": ("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3"),
    "p5": ("n1", "e1", "n2", "e4", "n4"),
    "p6": ("n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"),
    "p7": ("n2", "e2", "n3", "e3", "n2"),
    "p8": ("n2", "e2", "n3", "e3", "n2", "e2", "n3", "e3", "n2"),
    "p9": ("n2", "e2", "n3"),
    "p10": ("n2", "e2", "n3", "e3", "n2", "e2", "n3"),
    "p11": ("n2", "e4", "n4"),
    "p12": ("n2", "e2", "n3", "e3", "n2", "e4", "n4"),
    "p13": ("n3", "e3", "n2", "e4", "n4"),
    "p14": ("n3", "e3", "n2", "e2", "n3", "e3", "n2", "e4", "n4"),
}

#: Expected membership per semantics (W is bounded; all fourteen are walks).
EXPECTED = {
    "TRAIL": {"p1", "p2", "p3", "p5", "p6", "p7", "p9", "p11", "p12", "p13"},
    "ACYCLIC": {"p1", "p3", "p5", "p9", "p11", "p13"},
    "SIMPLE": {"p1", "p3", "p5", "p7", "p9", "p11", "p13"},
    "SHORTEST": {"p1", "p3", "p5", "p7", "p9", "p11", "p13"},
}

WALK_BOUND = 8


def _closures(knows_edges):
    return {
        "WALK": recursive_closure(knows_edges, Restrictor.WALK, WALK_BOUND),
        "TRAIL": recursive_closure(knows_edges, Restrictor.TRAIL),
        "ACYCLIC": recursive_closure(knows_edges, Restrictor.ACYCLIC),
        "SIMPLE": recursive_closure(knows_edges, Restrictor.SIMPLE),
        "SHORTEST": recursive_closure(knows_edges, Restrictor.SHORTEST),
    }


def test_table3_membership_benchmark(benchmark, figure1, knows_edges) -> None:
    closures = benchmark(_closures, knows_edges)
    for name, sequence in TABLE3_PATHS.items():
        path = Path.from_interleaved(figure1, sequence)
        assert path in closures["WALK"], f"{name} must be a walk"
        for semantics, expected_names in EXPECTED.items():
            assert (path in closures[semantics]) == (name in expected_names), (name, semantics)


def test_table3_report(figure1, knows_edges) -> None:
    """Print the regenerated Table 3 membership matrix."""
    closures = _closures(knows_edges)
    rows = []
    for name, sequence in TABLE3_PATHS.items():
        path = Path.from_interleaved(figure1, sequence)
        rows.append(
            (
                name,
                "(" + ", ".join(sequence) + ")",
                path in closures["WALK"],
                path in closures["TRAIL"],
                path in closures["ACYCLIC"],
                path in closures["SIMPLE"],
                path in closures["SHORTEST"],
            )
        )
    print()
    print(
        format_table(
            ["ID", "Path", "W", "T", "A", "S", "Sh"],
            rows,
            title="Table 3 — Knows+ paths of Figure 1 under the five semantics",
        )
    )
