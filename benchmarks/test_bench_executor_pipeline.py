"""E-S4 — executor comparison: materializing evaluator vs pull-based pipeline.

The pluggable execution layer (PERFORMANCE.md, "Executor selection") routes
every query through one of two executors.  This experiment measures both ends
to end through the engine facade on the streaming workloads of
:func:`repro.bench.workloads.executor_workloads`:

* **full-result**: both executors produce the complete path set (the pipeline
  trades per-path iterator overhead for bounded intermediate memory);
* **early termination** (``LIMIT k``): the pipeline stops pulling after ``k``
  paths while the materializing evaluator computes the full join first — the
  workload the pipeline must win;
* **plan cache**: a repeated hot query skips parse/plan/optimize entirely.

The session writes ``BENCH_engine.json`` at the repo root with the measured
timings and speedups, extending the perf trajectory next to
``BENCH_closure.json``.
"""

from __future__ import annotations

import time
from pathlib import Path as FilePath

import pytest

from repro.bench.reporting import format_table, write_bench_json
from repro.bench.workloads import executor_workloads, quick_mode
from repro.engine.engine import PathQueryEngine
from repro.rpq.compile import compile_regex

_REPO_ROOT = FilePath(__file__).resolve().parent.parent

WORKLOADS = executor_workloads()


def _best_of(callable_, repetitions: int = 5) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def engines() -> dict[str, PathQueryEngine]:
    return {workload.name: PathQueryEngine(workload.build_graph()) for workload in WORKLOADS}


def _measure_workload(workload, engine: PathQueryEngine) -> dict:
    regex = workload.regex
    limit = workload.parameters["limit"]
    materialize_s, full = _best_of(
        lambda: engine.execute_regex(regex, executor="materialize")
    )
    pipeline_s, streamed = _best_of(
        lambda: engine.execute_regex(regex, executor="pipeline")
    )
    assert full == streamed, workload.name  # logical/physical equivalence end to end
    pipeline_limit_s, limited = _best_of(
        lambda: engine.execute_regex(regex, executor="pipeline", limit=limit)
    )
    assert len(limited) == min(limit, len(full))
    return {
        "workload": workload.name,
        "regex": regex,
        "paths": len(full),
        "limit": limit,
        "materialize_s": round(materialize_s, 6),
        "pipeline_s": round(pipeline_s, 6),
        "pipeline_limit_s": round(pipeline_limit_s, 6),
        "limit_speedup_vs_materialize": round(materialize_s / pipeline_limit_s, 2),
    }


@pytest.fixture(scope="module")
def measured(engines) -> list[dict]:
    return [_measure_workload(workload, engines[workload.name]) for workload in WORKLOADS]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda workload: workload.name)
def test_executors_agree_through_facade(engines, workload) -> None:
    engine = engines[workload.name]
    assert engine.execute_regex(workload.regex, executor="materialize") == engine.execute_regex(
        workload.regex, executor="pipeline"
    )


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda workload: workload.name)
def test_auto_routes_streaming_workloads_to_pipeline(engines, workload) -> None:
    engine = engines[workload.name]
    result = engine.query_plan(compile_regex(workload.regex))
    assert result.executor == "pipeline"


@pytest.mark.quick
def test_pipeline_wins_on_early_termination(measured) -> None:
    """The acceptance measurement: LIMIT-k pulls beat full materialization.

    Asserted over the whole workload set rather than per entry: the union
    workload's margin is >10x (the pipeline stops after the first handful of
    scanned edges), which keeps the check robust against timing noise on
    shared CI runners where an individual join measurement could flake.
    """
    assert measured
    assert any(
        entry["pipeline_limit_s"] < entry["materialize_s"] for entry in measured
    ), measured


def test_plan_cache_serves_hot_queries(engines) -> None:
    workload = WORKLOADS[0]
    engine = PathQueryEngine(workload.build_graph())
    engine.execute_regex(workload.regex)
    engine.execute_regex(workload.regex)
    engine.execute_regex(workload.regex)
    assert len(engine.plan_cache) == 1
    assert engine.plan_cache.hits == 2


def test_executor_report(measured) -> None:
    print()
    print(
        format_table(
            ["workload", "paths", "materialize_s", "pipeline_s", "limit", "pipeline_limit_s", "speedup"],
            [
                (
                    entry["workload"],
                    entry["paths"],
                    entry["materialize_s"],
                    entry["pipeline_s"],
                    entry["limit"],
                    entry["pipeline_limit_s"],
                    entry["limit_speedup_vs_materialize"],
                )
                for entry in measured
            ],
            title="Executor comparison (end to end through PathQueryEngine)",
        )
    )


@pytest.fixture(scope="module", autouse=True)
def engine_perf_trajectory(measured) -> None:
    """Write BENCH_engine.json after the module's measurements (both modes)."""
    yield
    write_bench_json(
        str(_REPO_ROOT / "BENCH_engine.json"),
        "executor-materialize-vs-pipeline",
        measured,
        metadata={
            "mode": "quick" if quick_mode() else "full",
            "executors": {
                "materialize": "bottom-up materializing Evaluator",
                "pipeline": "pull-based iterator pipeline (limit pushed down)",
            },
            "note": "limit_speedup_vs_materialize = materialize_s / pipeline_limit_s "
            "on the LIMIT-k early-termination workload",
        },
    )
