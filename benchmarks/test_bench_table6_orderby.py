"""E-T6 — Table 6: the order-by operator τθ and its rank assignments.

Regenerates Table 6: for every θ the harness applies τθ to a γSTL solution
space over ϕTrail(Knows+) and asserts exactly the rank (△') assignments the
table prescribes — MinL(P) for partitions when θ contains P, MinL(G) for
groups when it contains G, Len(p) for paths when it contains A, and unchanged
ranks otherwise.  The benchmark measures the re-ranking cost per θ.
"""

from __future__ import annotations

import pytest

from repro.algebra.solution_space import GroupByKey, OrderByKey, group_by, order_by
from repro.bench.reporting import format_table
from repro.semantics.restrictors import Restrictor, recursive_closure


@pytest.fixture(scope="module")
def base_space(knows_edges):
    trails = recursive_closure(knows_edges, Restrictor.TRAIL)
    return group_by(trails, GroupByKey.STL)


def _check_table6_row(key: OrderByKey, before, after) -> None:
    for partition_before, partition_after in zip(before.partitions, after.partitions):
        if key.orders_partitions:
            assert partition_after.rank == partition_after.min_length()
        else:
            assert partition_after.rank == partition_before.rank
        for group_before, group_after in zip(partition_before.groups, partition_after.groups):
            if key.orders_groups:
                assert group_after.rank == group_after.min_length()
            else:
                assert group_after.rank == group_before.rank
            for path in group_after.paths:
                if key.orders_paths:
                    assert group_after.path_rank(path) == path.len()
                else:
                    assert group_after.path_rank(path) == group_before.path_rank(path)


@pytest.mark.parametrize("key", list(OrderByKey), ids=[k.value for k in OrderByKey])
def test_table6_orderby_semantics(benchmark, base_space, key) -> None:
    after = benchmark(order_by, base_space, key)
    _check_table6_row(key, base_space, after)


def test_table6_report(base_space) -> None:
    """Print the regenerated Table 6 (which △' assignments each θ performs)."""
    rows = []
    for key in OrderByKey:
        rows.append(
            (
                f"τ{key.value}",
                "MinL(P)" if key.orders_partitions else "unchanged",
                "MinL(G)" if key.orders_groups else "unchanged",
                "Len(p)" if key.orders_paths else "unchanged",
            )
        )
    print()
    print(
        format_table(
            ["θ", "△'(P)", "△'(G)", "△'(p)"],
            rows,
            title="Table 6 — order-by rank assignments (verified against the implementation)",
        )
    )
