"""E-F5 — Figure 5: the path-mode plan π(*,*,1)(τA(γST(ϕTrail(σKnows(Edges(G)))))).

Regenerates the six-step walkthrough of Section 5 (the ANY SHORTEST TRAIL
query): the plan is built exactly as drawn, each intermediate step is checked
(ϕTrail output, γST partitioning, τA ordering, π projection), and the final
answer is verified to contain one shortest trail per endpoint pair — the set
{p1, p3, p5, p7, p9, p11, p13} of Table 3 restricted to the paper's listing.
"""

from __future__ import annotations

from repro.algebra.conditions import label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.algebra.expressions import EdgesScan, GroupBy, OrderBy, Projection, Recursive, Selection
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.bench.reporting import format_table
from repro.engine.engine import PathQueryEngine
from repro.paths.path import Path
from repro.semantics.restrictors import Restrictor

#: The answer the Section 5 walkthrough derives (Table 3 names and sequences).
EXPECTED_ANSWER = {
    "p1": ("n1", "e1", "n2"),
    "p3": ("n1", "e1", "n2", "e2", "n3"),
    "p5": ("n1", "e1", "n2", "e4", "n4"),
    "p7": ("n2", "e2", "n3", "e3", "n2"),
    "p9": ("n2", "e2", "n3"),
    "p11": ("n2", "e4", "n4"),
    "p13": ("n3", "e3", "n2", "e4", "n4"),
}


def figure5_plan() -> Projection:
    return Projection(
        OrderBy(
            GroupBy(
                Recursive(Selection(label_of_edge(1, "Knows"), EdgesScan()), Restrictor.TRAIL),
                GroupByKey.ST,
            ),
            OrderByKey.A,
        ),
        ProjectionSpec("*", "*", 1),
    )


def test_figure5_plan_answer(benchmark, figure1) -> None:
    result = benchmark(evaluate_to_paths, figure5_plan(), figure1)
    expected_paths = {
        Path.from_interleaved(figure1, sequence) for sequence in EXPECTED_ANSWER.values()
    }
    # The projected set contains one shortest trail per endpoint pair; for the
    # pairs Table 5 lists, the shortest trail is unique, so the listed paths
    # must all be present.
    for path in expected_paths:
        assert path in result
    # And every projected path is a shortest trail for its pair.
    assert len(result) == len({path.endpoints() for path in result})


def test_figure5_equivalent_gql_query(benchmark, figure1) -> None:
    # Plan caching is disabled so every iteration measures the full
    # parse/plan/optimize/execute path (cache hits are measured separately
    # by test_bench_executor_pipeline).
    engine = PathQueryEngine(figure1, plan_cache_size=0)
    result = benchmark(lambda: engine.query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)"))
    for sequence in EXPECTED_ANSWER.values():
        assert Path.from_interleaved(figure1, sequence) in result.paths


def test_figure5_report(figure1) -> None:
    """Print the step-by-step walkthrough of Section 5."""
    from repro.algebra.solution_space import group_by, order_by, project
    from repro.semantics.restrictors import recursive_closure
    from repro.paths.pathset import PathSet

    edges = PathSet.edges_of(figure1)
    step2 = edges.filter(lambda p: figure1.edge(p.edge(1)).label == "Knows")
    step3 = recursive_closure(step2, Restrictor.TRAIL)
    step4 = group_by(step3, GroupByKey.ST)
    step5 = order_by(step4, OrderByKey.A)
    step6 = project(step5, ProjectionSpec("*", "*", 1))

    rows = [
        ("1. Edges(G)", len(edges), "paths of length one"),
        ("2. σ[label(edge(1))='Knows']", len(step2), "the four Knows edges"),
        ("3. ϕTrail", len(step3), "trails satisfying Knows+"),
        ("4. γST", step4.num_partitions(), "partitions (endpoint pairs)"),
        ("5. τA", step5.num_groups(), "groups, paths ranked by length"),
        ("6. π(*,*,1)", len(step6), "one shortest trail per pair"),
    ]
    print()
    print(
        format_table(
            ["Step", "count", "description"],
            rows,
            title="Figure 5 — MATCH ANY SHORTEST TRAIL p = (x)-[:Knows]->+(y), step by step",
        )
    )
    assert len(step6) == step4.num_partitions()
