"""E-P1 — Section 7.2: the query parser and its textual logical plans.

Regenerates the parser walkthrough of Section 7.2: the sample extended-GQL
query is parsed and planned, and the textual plan is compared line by line
with the output the paper prints.  The benchmark measures parsing + planning
throughput over a batch of representative queries.
"""

from __future__ import annotations

import pytest

from repro.algebra.printer import to_plan_tree
from repro.bench.reporting import format_table
from repro.gql.parser import parse_query
from repro.gql.planner import plan_query, plan_text

SECTION_72_QUERY = (
    "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
    "TRAIL p = (?x)-[(:Knows)*]->(?y) "
    "GROUP BY TARGET ORDER BY PATH"
)

#: The plan lines printed by the paper's parser for the sample query
#: (lines 1-4; lines 5-6 are represented by the arrow-indented body below).
PAPER_OUTPUT_HEADER = [
    "1 Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)",
    "2 OrderBy (Path)",
    "3 Group (Target)",
    "4 Restrictor (TRAIL)",
]

QUERY_BATCH = [
    SECTION_72_QUERY,
    "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)",
    "MATCH ALL SHORTEST ACYCLIC p = (?x)-[:Knows]->+(?y)",
    "MATCH SHORTEST 3 WALK p = (?x)-[:Knows]->+(?y)",
    'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
    '(?y {name: "Apu"})',
    'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE x.name = "Moe" AND len() <= 3',
    "MATCH 2 PARTITIONS 1 GROUPS 5 PATHS ACYCLIC p = (?x)-[(Likes/Has_creator)+]->(?y) "
    "GROUP BY SOURCE LENGTH ORDER BY PARTITION GROUP PATH",
]


def test_section72_parser_output() -> None:
    """The textual plan matches the paper's parser output format."""
    plan = plan_text(SECTION_72_QUERY)
    lines = to_plan_tree(plan).splitlines()
    assert lines[:4] == PAPER_OUTPUT_HEADER
    body = "\n".join(lines[4:])
    assert "Recursive Join (restrictor: TRAIL)" in body
    assert 'Select: (label(edge(1)) = \'Knows\')' in body
    assert "EDGES(G)" in body


def test_parse_benchmark(benchmark) -> None:
    def parse_all():
        return [parse_query(text) for text in QUERY_BATCH]

    queries = benchmark(parse_all)
    assert len(queries) == len(QUERY_BATCH)


def test_plan_benchmark(benchmark) -> None:
    parsed = [parse_query(text) for text in QUERY_BATCH]

    def plan_all():
        return [plan_query(query) for query in parsed]

    plans = benchmark(plan_all)
    assert len(plans) == len(QUERY_BATCH)


def test_parse_and_plan_benchmark(benchmark) -> None:
    def compile_all():
        return [plan_text(text) for text in QUERY_BATCH]

    plans = benchmark(compile_all)
    assert all(plan.count_operators() >= 3 for plan in plans)


def test_parser_report() -> None:
    """Print plan sizes for the query batch."""
    rows = []
    for text in QUERY_BATCH:
        plan = plan_text(text)
        label = text if len(text) <= 60 else text[:57] + "..."
        rows.append((label, plan.count_operators(), plan.depth()))
    print()
    print(
        format_table(
            ["query", "plan operators", "plan depth"],
            rows,
            title="Section 7.2 — parser and planner output over a representative batch",
        )
    )
