"""E-F6 — Figure 6: selection pushdown and its effect on intermediate results.

Regenerates Figure 6: the unoptimized plan 6a
``σ[first.name='Moe'](σKnows(E) ⋈ σKnows(E))`` and the optimized plan 6b with
the selection pushed into the left join input.  The harness verifies the
rewrite produces exactly the 6b shape, that both plans return the same
answer, and that the pushdown reduces intermediate results; the benchmark
measures both plans on Figure 1 and on a larger synthetic SNB-like graph so
the speedup is visible.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import label_of_edge, prop_of_first
from repro.algebra.evaluator import Evaluator, evaluate_to_paths
from repro.algebra.expressions import EdgesScan, Join, Selection
from repro.bench.reporting import format_table
from repro.datasets.ldbc import LDBCParameters, ldbc_like_graph
from repro.optimizer.engine import optimize
from repro.optimizer.rules import PushSelectionIntoJoin


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def figure6a_plan(name: str = "Moe") -> Selection:
    return Selection(prop_of_first("name", name), Join(knows_scan(), knows_scan()))


@pytest.fixture(scope="module")
def snb_graph():
    return ldbc_like_graph(LDBCParameters(num_persons=150, num_messages=150, seed=21))


def test_figure6_rewrite_shape() -> None:
    rewritten = PushSelectionIntoJoin().apply(figure6a_plan())
    assert isinstance(rewritten, Join)
    assert isinstance(rewritten.left, Selection)
    assert rewritten.left.condition == prop_of_first("name", "Moe")
    assert isinstance(rewritten.left.child, Selection)  # the Knows label scan below


def test_figure6_unoptimized_figure1(benchmark, figure1) -> None:
    result = benchmark(evaluate_to_paths, figure6a_plan(), figure1)
    assert {path.interleaved() for path in result} == {
        ("n1", "e1", "n2", "e2", "n3"),
        ("n1", "e1", "n2", "e4", "n4"),
    }


def test_figure6_optimized_figure1(benchmark, figure1) -> None:
    optimized = optimize(figure6a_plan()).optimized
    result = benchmark(evaluate_to_paths, optimized, figure1)
    assert {path.interleaved() for path in result} == {
        ("n1", "e1", "n2", "e2", "n3"),
        ("n1", "e1", "n2", "e4", "n4"),
    }


def test_figure6_unoptimized_snb(benchmark, snb_graph) -> None:
    result = benchmark(evaluate_to_paths, figure6a_plan(), snb_graph)
    optimized_result = evaluate_to_paths(optimize(figure6a_plan()).optimized, snb_graph)
    assert result == optimized_result


def test_figure6_optimized_snb(benchmark, snb_graph) -> None:
    optimized = optimize(figure6a_plan()).optimized
    result = benchmark(evaluate_to_paths, optimized, snb_graph)
    assert len(result) >= 0


def test_figure6_report(figure1, snb_graph) -> None:
    """Print the intermediate-result comparison of plans 6a and 6b on both graphs."""
    rows = []
    for graph_name, graph in (("figure1", figure1), ("ldbc-like (150 persons)", snb_graph)):
        plan = figure6a_plan()
        optimized = optimize(plan).optimized
        eval_plain = Evaluator(graph)
        plain_result = eval_plain.evaluate_paths(plan)
        eval_opt = Evaluator(graph)
        opt_result = eval_opt.evaluate_paths(optimized)
        assert plain_result == opt_result
        rows.append(
            (
                graph_name,
                len(plain_result),
                eval_plain.statistics.intermediate_paths,
                eval_opt.statistics.intermediate_paths,
            )
        )
    print()
    print(
        format_table(
            ["graph", "|result|", "intermediate paths (6a)", "intermediate paths (6b, pushdown)"],
            rows,
            title="Figure 6 — selection pushdown: plan 6a vs. plan 6b",
        )
    )
    for row in rows:
        assert row[3] <= row[2]
