"""Using the library as a GQL/SQL-PGQ compiler front end.

The paper positions the path algebra as the logical-plan layer a graph engine
needs to implement the ISO GQL and SQL/PGQ standards (Section 7).  This
example plays the role of such an engine: it takes a batch of queries written
in the extended GQL syntax, compiles each one to an algebra plan, prints the
plan in the paper's textual format (the Section 7.2 parser output), optimizes
it, and executes it against the Figure 1 graph.

It also demonstrates the Table 7 translation: for each selector/restrictor
combination the produced plan is shown next to the number of returned paths.

Run with::

    python examples/gql_compiler.py
"""

from __future__ import annotations

from repro import (
    PathQueryEngine,
    figure1_graph,
    to_algebra_notation,
    to_plan_tree,
)
from repro.bench.reporting import format_table
from repro.semantics import Restrictor
from repro.semantics.selectors import Selector, SelectorKind
from repro.semantics.translate import translate_selector_restrictor
from repro.rpq.compile import CompileOptions, compile_regex
from repro.algebra import evaluate_to_paths

QUERIES = [
    # The Section 7.1 sample query.
    "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) "
    "GROUP BY TARGET ORDER BY PATH",
    # Standard GQL selector style (Section 2.3).
    "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)",
    "MATCH ALL SHORTEST ACYCLIC p = (?x)-[:Knows]->+(?y)",
    "MATCH SHORTEST 2 GROUP WALK p = (?x)-[:Knows]->+(?y)",
    # The introduction's Moe-to-Apu query.
    'MATCH ALL SIMPLE p = (?x {name: "Moe"})-[(:Knows+)|((:Likes/:Has_creator)+)]->'
    '(?y {name: "Apu"})',
    # A WHERE clause over the Section 3.1 condition language.
    'MATCH ALL TRAIL p = (?x)-[Knows+]->(?y) WHERE x.name = "Moe" AND len() <= 2',
]


def compile_and_run() -> None:
    graph = figure1_graph()
    engine = PathQueryEngine(graph, default_max_length=6)

    for index, query in enumerate(QUERIES, start=1):
        print(f"\n=== Query {index} ===")
        print(query)
        result = engine.query(query)
        print("\nParser/planner output (Section 7.2 format):")
        print(to_plan_tree(result.plan))
        if result.applied_rules:
            print(f"\nOptimizer rewrites: {', '.join(result.applied_rules)}")
            print(f"Optimized plan: {to_algebra_notation(result.optimized_plan)}")
        print(f"\nResults ({len(result)} paths):")
        for path in result.paths.sorted()[:6]:
            print(f"  {path}")
        if len(result) > 6:
            print(f"  ... and {len(result) - 6} more")


def table7_demo() -> None:
    """Print Table 7: every selector with the WALK restrictor and its algebra plan."""
    graph = figure1_graph()
    pattern = compile_regex("Knows+", CompileOptions(restrictor=Restrictor.WALK, max_length=4))
    selectors = [
        Selector(SelectorKind.ALL),
        Selector(SelectorKind.ANY_SHORTEST),
        Selector(SelectorKind.ALL_SHORTEST),
        Selector(SelectorKind.ANY),
        Selector(SelectorKind.ANY_K, 2),
        Selector(SelectorKind.SHORTEST_K, 2),
        Selector(SelectorKind.SHORTEST_K_GROUP, 2),
    ]
    rows = []
    for selector in selectors:
        plan = translate_selector_restrictor(
            selector, Restrictor.WALK, pattern, already_recursive=True
        )
        paths = evaluate_to_paths(plan, graph)
        rows.append((f"{selector} WALK ppe", to_algebra_notation(plan), len(paths)))
    print("\n=== Table 7: GQL selector to path-algebra translation ===")
    print(format_table(["GQL expression", "Path algebra expression", "|result|"], rows))


if __name__ == "__main__":
    compile_and_run()
    table7_demo()
