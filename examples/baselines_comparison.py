"""Comparing the algebraic evaluator against classical RPQ algorithms.

Section 8.2 of the paper surveys the algorithmic approaches used to evaluate
path queries — graph traversal with regex matching, automaton product
constructions, and matrix methods — and notes that most of them return only
endpoint pairs, not paths, and cannot be composed into larger query pipelines.

This example runs all three baselines and the algebra on the same workloads
and reports (a) what each approach can return, and (b) how their running
times compare as the graph grows.  Absolute numbers depend on the machine;
the qualitative picture (specialized algorithms are faster per query, the
algebra returns full paths and stays composable) is the point.

Run with::

    python examples/baselines_comparison.py
"""

from __future__ import annotations

import time

from repro import CompileOptions, Restrictor, compile_regex, evaluate_to_paths
from repro.baselines import (
    MatrixRPQEvaluator,
    TraversalOptions,
    evaluate_rpq_pairs,
    evaluate_rpq_traversal,
)
from repro.bench.reporting import format_table
from repro.datasets import chain_graph, random_graph


def time_call(function, *args, **kwargs) -> tuple[float, object]:
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - started, result


def main() -> None:
    regex = "Knows+"
    rows = []
    for size in (50, 100, 200, 400):
        graph = random_graph(size, int(1.5 * size), labels=("Knows", "Likes"), seed=13)

        algebra_plan = compile_regex(regex, CompileOptions(restrictor=Restrictor.ACYCLIC))
        algebra_time, algebra_paths = time_call(evaluate_to_paths, algebra_plan, graph)

        traversal_time, traversal_paths = time_call(
            evaluate_rpq_traversal,
            graph,
            regex,
            TraversalOptions(restrictor=Restrictor.ACYCLIC),
        )

        automaton_time, automaton_result = time_call(evaluate_rpq_pairs, graph, regex)

        matrix_time, matrix_pairs = time_call(MatrixRPQEvaluator(graph).pairs, regex)

        assert algebra_paths == traversal_paths, "algebra and traversal must agree on paths"
        assert automaton_result.pairs == matrix_pairs, "automaton and matrix must agree on pairs"

        rows.append(
            (
                size,
                len(algebra_paths),
                len(matrix_pairs),
                f"{algebra_time * 1e3:.1f}",
                f"{traversal_time * 1e3:.1f}",
                f"{automaton_time * 1e3:.1f}",
                f"{matrix_time * 1e3:.1f}",
            )
        )

    print(
        format_table(
            [
                "nodes",
                "paths (algebra)",
                "pairs (baselines)",
                "algebra ms",
                "traversal ms",
                "automaton ms",
                "matrix ms",
            ],
            rows,
            title="ACYCLIC Knows+ — paths vs. endpoint pairs, algebra vs. classical algorithms",
        )
    )

    print("\nWhat each approach can return:")
    print("  algebra    : full paths, composable with further algebra operators")
    print("  traversal  : full paths, single query only")
    print("  automaton  : endpoint pairs + shortest distances")
    print("  matrix     : endpoint pairs only")

    # Chain graphs show the flip side: when there is exactly one path per pair,
    # the specialized algorithms and the algebra converge.
    graph = chain_graph(300)
    plan = compile_regex(regex, CompileOptions(restrictor=Restrictor.ACYCLIC))
    algebra_time, paths = time_call(evaluate_to_paths, plan, graph)
    pairs_time, pairs = time_call(evaluate_rpq_pairs, graph, regex)
    print(
        f"\nchain(300): {len(paths)} paths in {algebra_time * 1e3:.1f} ms (algebra), "
        f"{len(pairs.pairs)} pairs in {pairs_time * 1e3:.1f} ms (automaton)"
    )


if __name__ == "__main__":
    main()
