"""Composable path queries: concatenation, union, and beyond-GQL set operators.

Composability is the property the paper emphasizes most: because every
operator consumes and produces *sets of paths*, query answers can feed other
queries.  This example demonstrates the three composition mechanisms the
library offers on the Figure 1 graph and on a synthetic social network:

1. **Concatenation of path queries** (Section 2.3): evaluate two
   selector/restrictor queries and stitch their answers together path-wise,
   applying an outer selector/restrictor to the combined set.
2. **Union of path queries** (Section 2.3).
3. **Intersection and difference of answer sets** — natural operators the
   paper notes are missing from GQL/SQL-PGQ but exist in the algebra.

Run with::

    python examples/query_composition.py
"""

from __future__ import annotations

from repro import Restrictor, figure1_graph, to_algebra_notation
from repro.algebra import Difference, EdgesScan, Intersection, Join, Recursive, Selection, label_of_edge
from repro.algebra.evaluator import evaluate_to_paths
from repro.datasets import LDBCParameters, ldbc_like_graph
from repro.engine.results import bind_paths
from repro.semantics.compose import (
    QueryStep,
    compose_concatenation,
    compose_union,
    evaluate_composition,
    paper_example_composition,
)
from repro.semantics.selectors import Selector, SelectorKind


def knows_scan() -> Selection:
    return Selection(label_of_edge(1, "Knows"), EdgesScan())


def likes_creator_scan() -> Join:
    return Join(
        Selection(label_of_edge(1, "Likes"), EdgesScan()),
        Selection(label_of_edge(1, "Has_creator"), EdgesScan()),
    )


def concatenation_demo(graph) -> None:
    print("=== 1. Concatenation of path queries (Section 2.3) ===")
    print("ALL TRAIL [Knows+] · ANY SHORTEST WALK [(Likes/Has_creator)+], outer ALL SHORTEST TRAIL")
    query = paper_example_composition(knows_scan(), likes_creator_scan())
    print(f"single algebra plan: {to_algebra_notation(query.plan())[:120]}...")
    result = evaluate_composition(query, graph)
    print(f"{len(result)} concatenated paths:")
    for path in result.sorted()[:8]:
        print(f"  {path}")


def union_demo(graph) -> None:
    print("\n=== 2. Union of path queries ===")
    query = compose_union(
        Selector(SelectorKind.ANY_SHORTEST),
        Restrictor.WALK,
        QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, knows_scan()),
        QueryStep(Selector(SelectorKind.ALL), Restrictor.TRAIL, likes_creator_scan()),
    )
    result = evaluate_composition(query, graph)
    print(f"one shortest connection per pair, over Knows+ ∪ (Likes/Has_creator)+: {len(result)} paths")
    table = bind_paths(result)
    for row in table.sort_by(lambda r: (r.source, r.target)).rows[:6]:
        print(f"  {row.source} -> {row.target}  via {list(row.labels)}")


def set_operator_demo(graph) -> None:
    print("\n=== 3. Beyond GQL: intersection and difference of answer sets ===")
    trails = Recursive(knows_scan(), Restrictor.TRAIL)
    acyclic = Recursive(knows_scan(), Restrictor.ACYCLIC)

    both = Intersection(trails, acyclic)
    only_cyclic_trails = Difference(trails, acyclic)
    print(f"trails ∩ acyclic = {len(evaluate_to_paths(both, graph))} paths")
    cyclic = evaluate_to_paths(only_cyclic_trails, graph)
    print(f"trails ∖ acyclic = {len(cyclic)} paths (trails that revisit a node):")
    for path in cyclic.sorted():
        print(f"  {path}")


def larger_graph_demo() -> None:
    print("\n=== 4. The same compositions on a synthetic SNB-like graph ===")
    graph = ldbc_like_graph(LDBCParameters(num_persons=40, num_messages=80, seed=5))
    query = compose_concatenation(
        Selector(SelectorKind.ANY_SHORTEST),
        Restrictor.TRAIL,
        QueryStep(Selector(SelectorKind.ANY_SHORTEST), Restrictor.WALK, knows_scan()),
        QueryStep(Selector(SelectorKind.ALL), Restrictor.ACYCLIC, likes_creator_scan(), max_length=4),
    )
    result = evaluate_composition(query, graph)
    print(
        "shortest friendship chain followed by an influence chain, "
        f"one shortest combination per pair: {len(result)} paths"
    )
    lengths = sorted({path.len() for path in result})
    print(f"combined path lengths observed: {lengths}")


def main() -> None:
    graph = figure1_graph()
    concatenation_demo(graph)
    union_demo(graph)
    set_operator_demo(graph)
    larger_graph_demo()


if __name__ == "__main__":
    main()
