"""Query optimization walkthrough: logical rewrites and their measured effect.

The paper argues (Section 7.3) that an algebra enables the classical
optimizations of relational engines — predicate pushdown, operator
simplification, and semantics-preserving operator replacement.  This example
demonstrates all three on real plans and measures the effect on intermediate
result sizes and wall-clock time.

Run with::

    python examples/query_optimization.py
"""

from __future__ import annotations

import time

from repro import PathQueryEngine, figure1_graph, to_algebra_notation
from repro.algebra import (
    EdgesScan,
    Evaluator,
    Join,
    Projection,
    Recursive,
    Selection,
    label_of_edge,
    prop_of_first,
)
from repro.algebra.expressions import GroupBy, OrderBy
from repro.algebra.solution_space import GroupByKey, OrderByKey, ProjectionSpec
from repro.datasets import ldbc_like_graph, LDBCParameters
from repro.optimizer import CostModel, Optimizer
from repro.semantics import Restrictor


def measure(plan, graph, repetitions: int = 3) -> tuple[float, int]:
    """Return (best wall-clock seconds, intermediate path count) for evaluating ``plan``."""
    best = float("inf")
    intermediates = 0
    for _ in range(repetitions):
        evaluator = Evaluator(graph, default_max_length=6)
        started = time.perf_counter()
        evaluator.evaluate_paths(plan)
        best = min(best, time.perf_counter() - started)
        intermediates = evaluator.statistics.intermediate_paths
    return best, intermediates


def main() -> None:
    figure1 = figure1_graph()
    snb = ldbc_like_graph(LDBCParameters(num_persons=80, num_messages=160, seed=7))
    optimizer = Optimizer()

    # ------------------------------------------------------------------
    # 1. Selection pushdown (Figure 6).
    # ------------------------------------------------------------------
    print("=== 1. Selection pushdown (Figure 6) ===")
    knows = Selection(label_of_edge(1, "Knows"), EdgesScan())
    unoptimized = Selection(prop_of_first("name", "Moe"), Join(knows, knows))
    optimized = optimizer.optimize(unoptimized).optimized
    print(f"before: {to_algebra_notation(unoptimized)}")
    print(f"after : {to_algebra_notation(optimized)}")

    for name, graph in (("figure1", figure1), ("ldbc-like", snb)):
        time_before, work_before = measure(unoptimized, graph)
        time_after, work_after = measure(optimized, graph)
        print(
            f"  {name:<10} intermediate paths {work_before:>6} -> {work_after:>6}   "
            f"time {time_before * 1e3:7.2f} ms -> {time_after * 1e3:7.2f} ms"
        )

    # ------------------------------------------------------------------
    # 2. Walk-to-shortest replacement (Section 7.3): restores termination.
    # ------------------------------------------------------------------
    print("\n=== 2. ϕWalk -> ϕShortest under ANY SHORTEST (Section 7.3) ===")
    any_shortest_walk = Projection(
        OrderBy(
            GroupBy(Recursive(knows, Restrictor.WALK), GroupByKey.ST),
            OrderByKey.A,
        ),
        ProjectionSpec("*", "*", 1),
    )
    rewritten = optimizer.optimize(any_shortest_walk).optimized
    print(f"before: {to_algebra_notation(any_shortest_walk)}")
    print(f"after : {to_algebra_notation(rewritten)}")
    print("  the unoptimized plan does not terminate on cyclic graphs without a bound;")
    print("  the rewritten plan always terminates:")
    result = Evaluator(figure1).evaluate_paths(rewritten)
    print(f"  shortest Knows+ connections on figure1: {len(result)} paths")

    # ------------------------------------------------------------------
    # 3. Cost-model ranking of alternative plans.
    # ------------------------------------------------------------------
    print("\n=== 3. Cost model ranking ===")
    model = CostModel(snb)
    for name, plan in (("pushdown OFF", unoptimized), ("pushdown ON", optimized)):
        estimate = model.estimate(plan)
        print(
            f"  {name:<14} estimated output {estimate.output_cardinality:10.1f}   "
            f"estimated cost {estimate.total_cost:10.1f}"
        )

    # ------------------------------------------------------------------
    # 4. End-to-end: the engine applies the same rewrites automatically.
    # ------------------------------------------------------------------
    print("\n=== 4. Engine EXPLAIN ===")
    engine = PathQueryEngine(snb, default_max_length=4)
    explanation = engine.explain(
        'MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y) WHERE x.city = "Springfield"'
    )
    print(explanation.render())


if __name__ == "__main__":
    main()
