"""Social-network analysis on a synthetic LDBC-SNB-like graph.

The paper motivates the path algebra with LDBC Social Network Benchmark
workloads: friend-of-friend exploration, influence chains through messages,
and shortest-connection queries.  This example generates a synthetic SNB-like
graph (the real benchmark data needs the LDBC generator) and answers those
questions with the path algebra, reporting result sizes and the query plans
used.

Run with::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

from collections import Counter

from repro import PathQueryEngine, Restrictor, to_algebra_notation
from repro.datasets import LDBCParameters, ldbc_like_graph
from repro.graph.stats import compute_statistics


def print_header(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    parameters = LDBCParameters(
        num_persons=60,
        num_messages=120,
        num_forums=6,
        avg_knows_degree=2.5,
        avg_likes_per_person=2.0,
        knows_reciprocity=0.35,
        seed=2024,
    )
    graph = ldbc_like_graph(parameters)
    stats = compute_statistics(graph)
    print(f"Generated {graph!r}")
    print(f"  persons={stats.node_label_counts.get('Person', 0)}"
          f" messages={stats.node_label_counts.get('Message', 0)}"
          f" forums={stats.node_label_counts.get('Forum', 0)}")
    print(f"  Knows={stats.edge_label_counts.get('Knows', 0)}"
          f" Likes={stats.edge_label_counts.get('Likes', 0)}"
          f" Has_creator={stats.edge_label_counts.get('Has_creator', 0)}")
    print(f"  contains cycles: {stats.has_cycle}")

    engine = PathQueryEngine(graph, default_max_length=4)

    # ------------------------------------------------------------------
    # 1. Friends and friends-of-friends of one person (the Figure 3 query).
    # ------------------------------------------------------------------
    print_header("Friends and friends-of-friends (Knows | Knows/Knows)")
    some_person = graph.nodes_by_label("Person")[0]
    result = engine.query(
        f'MATCH ALL ACYCLIC p = (?x {{name: "{some_person.property("name")}"}})'
        f"-[Knows|(Knows/Knows)]->(?y)"
    )
    print(f"start person: {some_person.id} ({some_person.property('name')})")
    print(f"plan: {to_algebra_notation(result.plan)}")
    reachable = Counter(path.len() for path in result.paths)
    print(f"paths found: {len(result)} (1-hop: {reachable[1]}, 2-hop: {reachable[2]})")

    # ------------------------------------------------------------------
    # 2. Who likes content created by whom?  (Likes/Has_creator)+ chains.
    # ------------------------------------------------------------------
    print_header("Influence chains: (Likes/Has_creator)+ under ACYCLIC semantics")
    chains = engine.execute_regex(
        "(Likes/Has_creator)+", restrictor=Restrictor.ACYCLIC, max_length=6
    )
    print(f"chains found: {len(chains)}")
    length_histogram = Counter(path.len() for path in chains)
    for length in sorted(length_histogram):
        print(f"  length {length}: {length_histogram[length]} chains")

    # ------------------------------------------------------------------
    # 3. One shortest Knows connection per pair of persons (ANY SHORTEST).
    # ------------------------------------------------------------------
    print_header("Shortest friendship connections (ANY SHORTEST WALK Knows+)")
    result = engine.query("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
    print(f"optimizer rewrites applied: {result.applied_rules}")
    print(f"connected person pairs: {len(result)}")
    diameter = max((path.len() for path in result.paths), default=0)
    print(f"longest shortest connection (Knows-diameter of the reachable pairs): {diameter}")

    # ------------------------------------------------------------------
    # 4. Per-pair connection count capped at 3 (ANY 3 TRAIL).
    # ------------------------------------------------------------------
    print_header("Up to three distinct trails per pair (ANY 3 TRAIL Knows+)")
    result = engine.query("MATCH ANY 3 TRAIL p = (?x)-[:Knows]->+(?y)", max_length=4)
    per_pair = Counter(path.endpoints() for path in result.paths)
    capped = sum(1 for count in per_pair.values() if count == 3)
    print(f"total trails returned: {len(result)}")
    print(f"pairs returning the full cap of 3 trails: {capped}")


if __name__ == "__main__":
    main()
