"""Quickstart: run the paper's running-example queries on the Figure 1 graph.

This script walks through the main entry points of the library:

1. build / load a property graph (the paper's Figure 1 LDBC SNB snippet);
2. connect the client API and run a parameterized prepared query through a
   snapshot-pinned session, streaming the results off a cursor;
3. run the introduction's Moe-to-Apu query through the GQL front end;
4. inspect the logical plan, the optimizer rewrites and the results;
5. build the same query programmatically with the algebra API.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CompileOptions,
    PathQueryEngine,
    Restrictor,
    compile_regex,
    connect,
    evaluate_to_paths,
    figure1_graph,
    to_algebra_notation,
    to_plan_tree,
)
from repro.algebra import Selection, prop_of_first, prop_of_last


def main() -> None:
    graph = figure1_graph()
    print(f"Loaded {graph!r}")
    print(f"  node labels: {sorted(graph.node_labels())}")
    print(f"  edge labels: {sorted(graph.edge_labels())}")

    # ------------------------------------------------------------------
    # 0. The client API: connect -> session -> prepare -> cursor.
    # ------------------------------------------------------------------
    print("\n=== Client API: prepared query, one plan, many bindings ===")
    db = connect(graph, default_max_length=6)
    with db.session() as session:
        prepared = session.prepare(
            "MATCH ANY SHORTEST TRAIL p = (?x {name: $name})-[:Knows]->+(?y)"
        )
        for who in ("Moe", "Lisa"):
            rows = [str(path) for path in prepared.execute(name=who)]
            print(f"  from {who}: {len(rows)} paths  {rows[:2]}")
    stats = db.cache_stats()
    print(f"  plan cache: {stats['hits']} hits / {stats['misses']} miss(es)")

    engine = PathQueryEngine(graph, default_max_length=6)

    # ------------------------------------------------------------------
    # 1. The introduction's query: all SIMPLE paths from Moe to Apu, either
    #    through Knows+ or through (Likes/Has_creator)+.
    # ------------------------------------------------------------------
    query = (
        'MATCH ALL SIMPLE p = (?x {name: "Moe"})'
        '-[(:Knows+)|((:Likes/:Has_creator)+)]->'
        '(?y {name: "Apu"})'
    )
    print("\n=== Introduction query (Figure 2 with ϕSimple) ===")
    print(query)
    result = engine.query(query)
    print(f"\nLogical plan:\n  {to_algebra_notation(result.plan)}")
    print(f"\n{len(result)} simple paths from Moe to Apu:")
    for path in result.paths.sorted():
        print(f"  {path}")

    # ------------------------------------------------------------------
    # 2. A selector/restrictor query: one shortest trail per person pair.
    # ------------------------------------------------------------------
    print("\n=== ANY SHORTEST TRAIL over Knows+ (Figure 5 pipeline) ===")
    result = engine.query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->+(?y)")
    print(to_plan_tree(result.optimized_plan))
    print(f"\n{len(result)} shortest trails (one per endpoint pair):")
    for path in result.paths.sorted():
        print(f"  {path}")

    # ------------------------------------------------------------------
    # 3. The optimizer in action: ANY SHORTEST WALK on a cyclic graph only
    #    terminates because the walk-to-shortest rewrite fires (Section 7.3).
    # ------------------------------------------------------------------
    print("\n=== Optimizer: ANY SHORTEST WALK becomes ϕShortest ===")
    explanation = engine.explain("MATCH ANY SHORTEST WALK p = (?x)-[:Knows]->+(?y)")
    print(explanation.render())

    # ------------------------------------------------------------------
    # 4. Building plans programmatically with the algebra API.
    # ------------------------------------------------------------------
    print("\n=== Programmatic plan construction ===")
    pattern = compile_regex("Knows+", CompileOptions(restrictor=Restrictor.TRAIL))
    plan = Selection(prop_of_first("name", "Moe") & prop_of_last("name", "Apu"), pattern)
    plan = plan.group_by("ST").order_by("A").project("*", "*", 1)
    print(f"plan = {to_algebra_notation(plan)}")
    for path in evaluate_to_paths(plan, graph):
        print(f"  {path}")


if __name__ == "__main__":
    main()
